"""Differential suite for the bitset compilation layer (``repro.core.bitset``).

Every test here drives the ``sets`` reference and the ``bits`` engine
through :func:`repro.core.bitset.use_engine` and asserts equal results:
coverage kernels and tracker traces (add / checkpoint / rollback /
remove / reset / probe).  The engine-parametrized identity suite — all
solver arms on the seeded corpus, tracker differentials across every
registered engine — lives in ``tests/test_engines.py``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BCCInstance, CoverageTracker, from_letters as fs
from repro.core.bitset import (
    ENGINES,
    PropertySpace,
    QueryInterner,
    active_engine,
    use_engine,
)
from repro.core.coverage import (
    BitsetCoverageTracker,
    SetCoverageTracker,
    covered_queries,
    i_covers,
    is_covered,
    is_minimal_cover,
    minimal_covers,
)
from repro.core.model import powerset_classifiers
from repro.mc3.greedy import cheapest_residual_cover
from tests.strategies import bcc_instances, solvable_instances


def _fig1() -> BCCInstance:
    queries = [fs("xyz"), fs("xz"), fs("xy")]
    utilities = {fs("xyz"): 8.0, fs("xz"): 1.0, fs("xy"): 2.0}
    costs = {
        fs("x"): 5.0,
        fs("y"): 3.0,
        fs("z"): 3.0,
        fs("xyz"): 3.0,
        fs("xz"): 4.0,
        fs("yz"): 0.0,
        fs("xy"): math.inf,
    }
    return BCCInstance(queries, utilities, costs, budget=4.0)


# ----------------------------------------------------------------------
# the engine switch
# ----------------------------------------------------------------------
class TestEngineSwitch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            with use_engine("bogus"):
                pass

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError):
            active_engine()

    def test_env_value_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "  SETS ")
        assert active_engine() == "sets"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "sets")
        with use_engine("bits"):
            assert active_engine() == "bits"
        assert active_engine() == "sets"

    def test_tracker_dispatch_follows_engine(self):
        instance = _fig1()
        with use_engine("bits"):
            assert type(CoverageTracker(instance)) is BitsetCoverageTracker
        with use_engine("sets"):
            assert not isinstance(CoverageTracker(instance), BitsetCoverageTracker)

    def test_set_tracker_pins_reference_backend(self):
        with use_engine("bits"):
            assert type(SetCoverageTracker(_fig1())) is SetCoverageTracker


# ----------------------------------------------------------------------
# the compilation layer
# ----------------------------------------------------------------------
class TestPropertySpace:
    def test_layout_is_sorted_and_deduplicated(self):
        space = PropertySpace(["b", "a", "c", "a"])
        assert len(space) == 3
        assert space.mask_of(["a"]) == 1
        assert space.mask_of(["b"]) == 2
        assert space.mask_of(["c"]) == 4

    def test_foreign_name_is_none_but_clip_drops_it(self):
        space = PropertySpace(["a", "b"])
        assert space.mask_of(["a", "zz"]) is None
        assert space.clip_mask(["a", "zz"]) == space.mask_of(["a"])

    def test_props_round_trip(self):
        space = PropertySpace(["a", "b", "c"])
        for props in (frozenset("a"), frozenset("ab"), frozenset("abc")):
            assert space.props_of(space.mask_of(props)) == props

    def test_interner_matches_space_of_one_query(self):
        query = fs("xz")
        interner = QueryInterner(query)
        assert interner.full == QueryInterner(query).clip(query)
        assert interner.mask(fs("xy")) is None
        assert interner.clip(fs("xy")) == interner.mask(fs("x"))
        assert interner.props_of(interner.full) == query

    def test_compiled_containing_is_ascending_workload_order(self):
        instance = _fig1()
        compiled = instance.compiled()
        x_mask = compiled.mask_of(fs("x"))
        rows = compiled.containing(x_mask)
        assert list(rows) == sorted(rows)
        assert [compiled.queries[i] for i in rows] == list(instance.queries)
        assert compiled.row_bitmap(x_mask) == sum(1 << i for i in rows)

    def test_compiled_is_memoized_per_workload(self):
        instance = _fig1()
        assert instance.compiled() is instance.compiled()


class TestContainingCacheBound:
    def test_irrelevant_probes_do_not_grow_the_cache(self):
        """Satellite: the classifier→query memo is bounded by ``|CL|``."""
        instance = _fig1()
        bound = len(instance.relevant_classifiers())
        for engine in ENGINES:
            with use_engine(engine):
                probe = BCCInstance(
                    list(instance.queries),
                    {q: instance.utility(q) for q in instance.queries},
                    {c: instance.cost(c) for c in instance.relevant_classifiers()},
                    budget=instance.budget,
                )
                for classifier in probe.relevant_classifiers():
                    probe.queries_containing(classifier)
                for junk in (fs("q"), fs("qw"), fs("xq"), frozenset({"nope"})):
                    for _ in range(50):
                        assert probe.queries_containing(junk) == ()
                assert len(probe._containing_cache) <= bound


# ----------------------------------------------------------------------
# kernel equality between engines
# ----------------------------------------------------------------------
def _naive_covered_queries(workload, classifiers):
    """Quadratic subset-union reference for :func:`covered_queries`."""
    result = set()
    for query in workload.queries:
        union = set()
        for classifier in classifiers:
            if classifier <= query:
                union |= classifier
        if union >= query:
            result.add(query)
    return result


class TestKernelEquality:
    @settings(max_examples=60, deadline=None)
    @given(bcc_instances(max_queries=5))
    def test_covered_queries_engines_and_naive_agree(self, instance):
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        selection = pool[::2]
        expected = _naive_covered_queries(instance, selection)
        for engine in ENGINES:
            with use_engine(engine):
                assert covered_queries(instance, selection) == expected

    @settings(max_examples=60, deadline=None)
    @given(bcc_instances(max_queries=4))
    def test_is_covered_engines_agree(self, instance):
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        for query in instance.queries:
            for selection in (pool, pool[::2], pool[:1], []):
                with use_engine("sets"):
                    reference = is_covered(query, selection)
                with use_engine("bits"):
                    assert is_covered(query, selection) == reference

    @settings(max_examples=40, deadline=None)
    @given(st.frozensets(st.sampled_from("abcde"), min_size=1, max_size=4))
    def test_minimal_cover_families_engines_agree(self, query):
        with use_engine("sets"):
            reference = minimal_covers(query)
        with use_engine("bits"):
            assert minimal_covers(query) == reference
        for size in range(1, len(query) + 1):
            with use_engine("sets"):
                sized = i_covers(query, size)
            with use_engine("bits"):
                assert i_covers(query, size) == sized
            for cover in sized:
                assert is_minimal_cover(query, cover)

    @settings(max_examples=60, deadline=None)
    @given(st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=4), st.data())
    def test_is_minimal_cover_matches_quadratic_reference(self, query, data):
        """Satellite: the counting-pass minimality test vs rest-union."""
        pool = list(powerset_classifiers(query)) + [query | {"z"}]
        cover = data.draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=4, unique=True)
        )

        def reference(q, members):
            union = frozenset().union(*members)
            if any(not c <= q for c in members) or union != q:
                return False
            return all(
                frozenset().union(*(o for o in members if o is not c)) != q
                for c in members
            )

        assert is_minimal_cover(query, cover) == reference(query, cover)

    @settings(max_examples=60, deadline=None)
    @given(solvable_instances(max_queries=5))
    def test_cheapest_residual_cover_engines_agree(self, instance):
        for query in instance.queries:
            candidates = [
                (c, instance.cost(c)) for c in powerset_classifiers(query)
            ]
            for covered in (set(), set(sorted(query)[:1])):
                with use_engine("sets"):
                    reference = cheapest_residual_cover(query, candidates, covered)
                with use_engine("bits"):
                    found = cheapest_residual_cover(query, candidates, covered)
                    compiled_found = cheapest_residual_cover(
                        query, candidates, covered, instance.compiled()
                    )
                assert found == reference
                assert compiled_found == reference


# ----------------------------------------------------------------------
# tracker trace differential
# ----------------------------------------------------------------------
def _snapshot(tracker, workload):
    return (
        tracker.selected,
        tracker.covered,
        tracker.utility,
        tracker.spent,
        {q: tracker.missing_properties(q) for q in workload.queries},
    )


class TestTrackerTraceDifferential:
    @settings(max_examples=50, deadline=None)
    @given(solvable_instances(max_queries=5))
    def test_identical_traces(self, instance):
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        with use_engine("sets"):
            reference = SetCoverageTracker(instance)
        with use_engine("bits"):
            bits = CoverageTracker(instance)
        assert type(bits) is BitsetCoverageTracker
        trackers = (reference, bits)

        def check():
            ref, bit = (_snapshot(t, instance) for t in trackers)
            assert ref == bit
            for query in instance.queries:
                assert (
                    reference.is_query_covered(query)
                    == bits.is_query_covered(query)
                )
                missing = bits.missing_mask(query)
                assert bits._compiled.props_of(missing) == (
                    reference.missing_properties(query)
                )

        check()
        # Plain adds, including a duplicate.
        for classifier in pool[:3] + pool[:1]:
            assert reference.add(classifier) == bits.add(classifier)
            check()
        # Read-only probes must agree and leave no trace.
        for slate in (pool[3:6], pool[:2], [frozenset()]):
            assert reference.probe_gain(slate) == bits.probe_gain(slate)
            check()
        for classifier in pool:
            assert reference.probe_gain([classifier]) == bits.probe_gain(
                [classifier]
            )
            assert (
                reference.uncovered_contained_utility(classifier)
                == bits.uncovered_contained_utility(classifier)
            )
        # Checkpointed adds roll back bit-for-bit.
        for tracker in trackers:
            tracker.checkpoint()
        for classifier in pool[3:6]:
            assert reference.add(classifier) == bits.add(classifier)
            check()
        for tracker in trackers:
            tracker.rollback()
        check()
        # Removal recomputes residual state identically.
        for classifier in pool[:2]:
            assert reference.remove(classifier) == bits.remove(classifier)
            check()
        for tracker in trackers:
            tracker.reset()
        check()

    def test_probe_after_rollback_uses_fresh_state(self):
        """The bits transpose cache must not survive a rollback."""
        instance = _fig1()
        with use_engine("bits"):
            tracker = CoverageTracker(instance)
        with use_engine("sets"):
            reference = SetCoverageTracker(instance)
        slate = [fs("xyz"), fs("yz")]
        assert tracker.probe_gain(slate) == reference.probe_gain(slate)
        for t in (tracker, reference):
            t.checkpoint()
            t.add(fs("xyz"))
        assert tracker.probe_gain([fs("yz")]) == reference.probe_gain([fs("yz")])
        for t in (tracker, reference):
            t.rollback()
        assert tracker.probe_gain(slate) == reference.probe_gain(slate)
        assert _snapshot(tracker, instance) == _snapshot(reference, instance)


# The all-arm corpus differential (sets vs bits vs matrix) lives in
# ``tests/test_engines.py`` — promoted there when the matrix engine
# joined, together with the engine-parametrized tracker traces.
