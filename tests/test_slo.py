"""Test wall for the anytime latency-SLO meta-solver (``repro.slo``).

Everything timing-dependent runs on a :class:`VirtualClock`, so every
scheduling decision asserted here is deterministic: same observations +
same deadline → same arm schedule, bit for bit, on every platform and
under every coverage engine.  The wall covers the clock protocol, the
fingerprint features, the cost-model fit (hypothesis-fuzzed: monotone in
size, never negative, deterministic, exact 2x metamorphic scaling), the
versioned stats store's degradation ladder, the pool's clock plumbing,
the meta-solver's deadline boundaries (0ms through unbounded), the
incumbent-dominance verifier, and the CLI.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings

from repro.core import BCCInstance, from_letters as fs
from repro.core.bitset import ENGINES, use_engine
from repro.core.errors import IncumbentCertificateError, InvalidInstanceError
from repro.core.solution import evaluate
from repro.datasets import generate_fragmented
from repro.parallel.clock import SYSTEM_CLOCK, SystemClock, VirtualClock
from repro.parallel.pool import BatchResults, ParallelConfig, SolveTask, run_tasks
from repro.parallel.registry import (
    COST_TIERS,
    TIER_PRIOR_SECONDS,
    solver_names,
    solver_tier,
)
from repro.slo import (
    MIN_FIT_OBSERVATIONS,
    AnytimeMetaSolver,
    ArmStatsStore,
    SloConfig,
    solve_slo,
)
from repro.slo.cost_model import fit_cost_model
from repro.slo.features import (
    FEATURE_NAMES,
    features_as_dict,
    features_from_counts,
    instance_features,
)
from repro.slo.meta import DEFAULT_ARMS
from repro.slo.stats import (
    MAX_OBSERVATIONS_PER_KEY,
    STATS_VERSION,
    default_stats_store,
    seed_store_from_bench,
)
from repro.verify import check_incumbent_trace
from tests.strategies import arm_observations, feature_counts

_FEATURES = features_from_counts(10, 20, 5, 3, 1, 1, 2)


def _workload(components: int = 4, seed: int = 0) -> BCCInstance:
    return generate_fragmented(
        n_components=components,
        queries_per_component=4,
        budget=150.0 * components,
        seed=seed,
    )


def _prior_clock(stats: ArmStatsStore) -> VirtualClock:
    """Simulated time: every arm runs for its store-predicted runtime."""
    return VirtualClock(
        task_seconds=lambda task: stats.predict_runtime(
            task.solver, _FEATURES, "virtual"
        )
    )


def _virtual_solver(**config_kwargs) -> AnytimeMetaSolver:
    stats = config_kwargs.pop("stats", None) or ArmStatsStore(path=None)
    clock = config_kwargs.pop("clock", None) or _prior_clock(stats)
    return AnytimeMetaSolver(
        SloConfig(stats=stats, clock=clock, record=False, **config_kwargs)
    )


# ----------------------------------------------------------------------
# the clock protocol
# ----------------------------------------------------------------------
class TestClocks:
    def test_system_clock_is_not_virtual_and_moves_forward(self):
        clock = SystemClock()
        assert clock.virtual is False
        assert SYSTEM_CLOCK.virtual is False
        first = clock.now()
        assert clock.now() >= first

    def test_system_clock_run_task_times_the_call(self):
        result, seconds = SystemClock().run_task(None, lambda: 42)
        assert result == 42
        assert seconds >= 0.0

    def test_virtual_clock_starts_where_told_and_advances(self):
        clock = VirtualClock(start=5.0)
        assert clock.virtual is True
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_virtual_clock_rejects_backwards_time(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_virtual_run_task_charges_the_simulated_duration(self):
        clock = VirtualClock(task_seconds=lambda task: 3.0)
        result, seconds = clock.run_task("anything", lambda: "done")
        assert (result, seconds) == ("done", 3.0)
        assert clock.now() == 3.0

    def test_virtual_run_task_defaults_to_instantaneous(self):
        clock = VirtualClock()
        _, seconds = clock.run_task("t", lambda: None)
        assert seconds == 0.0
        assert clock.now() == 0.0

    def test_virtual_run_task_rejects_negative_simulated_time(self):
        clock = VirtualClock(task_seconds=lambda task: -0.1)
        with pytest.raises(ValueError):
            clock.run_task("t", lambda: None)


# ----------------------------------------------------------------------
# fingerprint features
# ----------------------------------------------------------------------
class TestFeatures:
    def test_features_are_log1p_of_counts(self):
        vector = features_from_counts(1, 2, 3, 4, 5, 6, 7)
        assert vector == tuple(math.log1p(c) for c in (1, 2, 3, 4, 5, 6, 7))

    def test_zero_counts_give_the_zero_vector(self):
        assert features_from_counts(0, 0, 0, 0, 0, 0, 0) == (0.0,) * 7

    def test_negative_counts_are_rejected(self):
        with pytest.raises(ValueError):
            features_from_counts(1, -1, 0, 0, 0, 0, 0)

    def test_instance_features_match_manual_counts(self):
        instance = BCCInstance(
            [fs("a"), fs("bc"), fs("de")],
            {fs("a"): 1.0, fs("bc"): 2.0, fs("de"): 3.0},
            {},
            budget=10.0,
        )
        vector = features_as_dict(instance_features(instance))
        assert vector["log_queries"] == math.log1p(3)
        assert vector["log_properties"] == math.log1p(5)
        assert vector["log_len1"] == math.log1p(1)
        assert vector["log_len2"] == math.log1p(2)
        assert vector["log_len4p"] == 0.0
        # a, bc, de share no property: three independent shards
        assert vector["log_shards"] == math.log1p(3)

    def test_features_as_dict_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            features_as_dict((1.0, 2.0))


# ----------------------------------------------------------------------
# the cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_no_samples_means_no_model(self):
        assert fit_cost_model([]) is None

    def test_few_samples_fit_the_geometric_mean(self):
        samples = [(_FEATURES, 2.0), (_FEATURES, 8.0)]
        model = fit_cost_model(samples)
        assert model.weights == (0.0,) * len(FEATURE_NAMES)
        assert model.predict_seconds(_FEATURES) == pytest.approx(4.0)

    def test_prediction_rejects_wrong_arity(self):
        model = fit_cost_model([(_FEATURES, 1.0)])
        with pytest.raises(ValueError):
            model.predict_seconds((1.0, 2.0))

    @settings(max_examples=60, deadline=None)
    @given(arm_observations())
    def test_predictions_are_always_positive_and_finite(self, samples):
        model = fit_cost_model(samples)
        for features, _ in samples:
            predicted = model.predict_seconds(features)
            assert predicted > 0.0
            assert math.isfinite(predicted)

    @settings(max_examples=40, deadline=None)
    @given(arm_observations())
    def test_fit_is_deterministic(self, samples):
        first = fit_cost_model(samples)
        second = fit_cost_model(list(samples))
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(arm_observations(), feature_counts(), feature_counts())
    def test_predictions_are_monotone_in_size(self, samples, counts_a, counts_b):
        """Growing every size count must never shrink the prediction."""
        model = fit_cost_model(samples)
        smaller = tuple(min(a, b) for a, b in zip(counts_a, counts_b))
        larger = tuple(max(a, b) for a, b in zip(counts_a, counts_b))
        low = model.predict_seconds(features_from_counts(*smaller))
        high = model.predict_seconds(features_from_counts(*larger))
        assert high >= low

    @settings(max_examples=40, deadline=None)
    @given(
        arm_observations(
            min_samples=MIN_FIT_OBSERVATIONS, max_samples=20, max_seconds=30.0
        )
    )
    def test_doubling_every_runtime_doubles_every_prediction(self, samples):
        """Metamorphic: 2x runtime scaling is a pure intercept shift."""
        # Stay above the MIN_SECONDS log floor so scaling is exact.
        samples = [(f, max(s, 1e-3)) for f, s in samples]
        base = fit_cost_model(samples)
        scaled = fit_cost_model([(f, 2.0 * s) for f, s in samples])
        assert scaled.weights == pytest.approx(base.weights, rel=1e-6, abs=1e-9)
        for features, _ in samples:
            assert scaled.predict_seconds(features) == pytest.approx(
                2.0 * base.predict_seconds(features), rel=1e-6
            )

    def test_extreme_features_cap_to_a_finite_prediction(self):
        samples = [(_FEATURES, 10.0)] * MIN_FIT_OBSERVATIONS
        model = fit_cost_model(samples)
        huge = (1e9,) * len(FEATURE_NAMES)
        assert math.isfinite(model.predict_seconds(huge))


# ----------------------------------------------------------------------
# the versioned stats store
# ----------------------------------------------------------------------
class TestArmStatsStore:
    def test_empty_store_answers_with_the_tier_prior(self):
        store = ArmStatsStore(path=None)
        for arm in solver_names():
            prior = TIER_PRIOR_SECONDS[solver_tier(arm)]
            assert store.predict_runtime(arm, _FEATURES, "bits") == prior

    def test_tier_priors_cover_every_tier_and_ascend(self):
        assert tuple(TIER_PRIOR_SECONDS) == COST_TIERS
        assert (
            TIER_PRIOR_SECONDS["cheap"]
            < TIER_PRIOR_SECONDS["medium"]
            < TIER_PRIOR_SECONDS["expensive"]
        )

    def test_few_observations_predict_their_geometric_mean(self):
        store = ArmStatsStore(path=None)
        store.record("abcc", "bits", _FEATURES, 2.0, 10.0)
        store.record("abcc", "bits", _FEATURES, 8.0, 10.0)
        assert store.predict_runtime("abcc", _FEATURES, "bits") == pytest.approx(4.0)
        # a different engine key is untouched
        assert (
            store.predict_runtime("abcc", _FEATURES, "sets")
            == TIER_PRIOR_SECONDS["medium"]
        )

    def test_record_validates_inputs(self):
        store = ArmStatsStore(path=None)
        with pytest.raises(ValueError):
            store.record("abcc", "bits", (1.0, 2.0), 1.0, 1.0)
        with pytest.raises(ValueError):
            store.record("abcc", "bits", _FEATURES, -1.0, 1.0)

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "stats.json"
        store = ArmStatsStore(path=path)
        store.record("abcc", "bits", _FEATURES, 0.25, 5.0)
        store.save()
        reloaded = ArmStatsStore(path=path)
        assert reloaded.observation_count("abcc", "bits") == 1
        assert reloaded.predict_runtime("abcc", _FEATURES, "bits") == pytest.approx(
            0.25
        )

    def test_save_without_recording_writes_nothing(self, tmp_path):
        path = tmp_path / "stats.json"
        ArmStatsStore(path=path).save()
        assert not path.exists()

    def test_corrupt_file_degrades_to_an_empty_store(self, tmp_path):
        path = tmp_path / "stats.json"
        path.write_text("{not json at all")
        store = ArmStatsStore(path=path)
        assert store.total_observations() == 0
        assert store.stats.discarded_files == 1
        prior = TIER_PRIOR_SECONDS[solver_tier("abcc")]
        assert store.predict_runtime("abcc", _FEATURES, "bits") == prior

    def test_version_bump_discards_old_observations(self, tmp_path):
        path = tmp_path / "stats.json"
        store = ArmStatsStore(path=path)
        store.record("abcc", "bits", _FEATURES, 1.0, 1.0)
        store.save()
        payload = json.loads(path.read_text())
        payload["version"] = STATS_VERSION + 1
        path.write_text(json.dumps(payload))
        reloaded = ArmStatsStore(path=path)
        assert reloaded.total_observations() == 0
        assert reloaded.stats.discarded_files == 1

    def test_malformed_rows_inside_valid_json_degrade_to_empty(self, tmp_path):
        path = tmp_path / "stats.json"
        payload = {
            "version": STATS_VERSION,
            "observations": {"abcc": {"bits": [[[1.0, 2.0], 0.5, 1.0]]}},
        }
        path.write_text(json.dumps(payload))
        store = ArmStatsStore(path=path)
        assert store.total_observations() == 0
        assert store.stats.discarded_files == 1

    def test_observation_cap_rolls_the_oldest_entries_off(self):
        store = ArmStatsStore(path=None)
        for index in range(MAX_OBSERVATIONS_PER_KEY + 40):
            store.record("abcc", "bits", _FEATURES, float(index + 1), 1.0)
        assert store.observation_count("abcc", "bits") == MAX_OBSERVATIONS_PER_KEY
        assert store.stats.recorded == MAX_OBSERVATIONS_PER_KEY + 40

    def test_models_refit_lazily(self):
        store = ArmStatsStore(path=None)
        for _ in range(MIN_FIT_OBSERVATIONS):
            store.record("abcc", "bits", _FEATURES, 1.0, 1.0)
        store.predict_runtime("abcc", _FEATURES, "bits")
        fits = store.stats.fits
        store.record("abcc", "bits", _FEATURES, 1.0, 1.0)
        store.predict_runtime("abcc", _FEATURES, "bits")
        assert store.stats.fits == fits  # +1 observation: under growth factor
        for _ in range(MIN_FIT_OBSERVATIONS):
            store.record("abcc", "bits", _FEATURES, 1.0, 1.0)
        store.predict_runtime("abcc", _FEATURES, "bits")
        assert store.stats.fits == fits + 1

    def test_default_store_honours_the_environment(self, tmp_path, monkeypatch):
        target = tmp_path / "custom-stats.json"
        monkeypatch.setenv("REPRO_ARM_STATS", str(target))
        assert default_stats_store().path == target


class TestSeedStoreFromBench:
    """Replaying benchmark arm_observations into the arm-stats store."""

    def _bench_file(self, tmp_path, rows):
        path = tmp_path / "BENCH_hotpath.json"
        path.write_text(json.dumps({"arm_observations": rows}))
        return path

    def _row(self, seconds=0.25, utility=10.0):
        return {
            "arm": "abcc",
            "engine": "bits",
            "features": [1.0] * len(FEATURE_NAMES),
            "seconds": seconds,
            "utility": utility,
        }

    def test_seeds_every_row(self, tmp_path):
        store = ArmStatsStore(path=None)
        path = self._bench_file(tmp_path, [self._row(0.2), self._row(0.3)])
        assert seed_store_from_bench(store, path) == 2
        assert store.observation_count("abcc", "bits") == 2

    def test_seeded_observations_drive_predictions(self, tmp_path):
        store = ArmStatsStore(path=None)
        rows = [self._row(0.5) for _ in range(MIN_FIT_OBSERVATIONS)]
        seed_store_from_bench(store, self._bench_file(tmp_path, rows))
        predicted = store.predict_runtime(
            "abcc", (1.0,) * len(FEATURE_NAMES), "bits"
        )
        # With uniform observations the prediction tracks the observed
        # runtime, not the registry tier prior.
        assert abs(predicted - 0.5) < 0.2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            seed_store_from_bench(ArmStatsStore(path=None), tmp_path / "nope.json")

    def test_non_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not JSON"):
            seed_store_from_bench(ArmStatsStore(path=None), path)

    def test_missing_observations_key_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"micro_probe": {}}))
        with pytest.raises(ValueError, match="arm_observations"):
            seed_store_from_bench(ArmStatsStore(path=None), path)

    def test_malformed_row_raises(self, tmp_path):
        row = self._row()
        del row["seconds"]
        path = self._bench_file(tmp_path, [row])
        with pytest.raises(ValueError, match="malformed"):
            seed_store_from_bench(ArmStatsStore(path=None), path)

    def test_cli_seed_stats_flag(self, tmp_path, capsys):
        from repro.slo.cli import main

        path = self._bench_file(tmp_path, [self._row()])
        code = main(
            [
                "--virtual",
                "--deadline-ms",
                "10",
                "--components",
                "3",
                "--seed-stats",
                str(path),
            ]
        )
        assert code == 0
        assert "seeded 1 observation(s)" in capsys.readouterr().out

    def test_cli_seed_stats_bad_file_exits_2(self, tmp_path, capsys):
        from repro.slo.cli import main

        code = main(["--virtual", "--seed-stats", str(tmp_path / "nope.json")])
        assert code == 2
        assert "--seed-stats failed" in capsys.readouterr().err


# ----------------------------------------------------------------------
# pool plumbing: clocks and advisory timeouts
# ----------------------------------------------------------------------
class TestPoolClockPlumbing:
    def _task(self, key="t", timeout_s=None):
        instance = BCCInstance(
            [fs("ab")], {fs("ab"): 5.0}, {fs("ab"): 1.0}, budget=10.0
        )
        return SolveTask(
            key=key, solver="ig1-bcc", instance=instance, timeout_s=timeout_s
        )

    def test_virtual_clock_reports_simulated_seconds(self):
        clock = VirtualClock(task_seconds=lambda task: 1.5)
        results = run_tasks(
            [self._task()], ParallelConfig(jobs=4, clock=clock)
        )
        assert results[0].seconds == 1.5
        assert clock.now() == 1.5

    def test_task_over_its_advisory_timeout_is_flagged(self):
        clock = VirtualClock(task_seconds=lambda task: 2.0)
        results = run_tasks(
            [self._task("a", timeout_s=1.0), self._task("b", timeout_s=3.0)],
            ParallelConfig(jobs=1, clock=clock),
        )
        assert results[0].timed_out is True
        assert results[1].timed_out is False

    def test_batch_results_sum_their_seconds(self):
        clock = VirtualClock(task_seconds=lambda task: 0.5)
        results = BatchResults(
            run_tasks(
                [self._task("a"), self._task("b")],
                ParallelConfig(jobs=1, clock=clock),
            )
        )
        assert results.total_seconds() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# the anytime meta-solver
# ----------------------------------------------------------------------
class TestAnytimeMetaSolver:
    def test_zero_deadline_still_returns_a_certified_answer(self):
        solver = _virtual_solver()
        solution = solver.solve(_workload(), deadline_ms=0.0)
        slo = solution.meta["slo"]
        assert len(slo["schedule"]) == 1  # the cheapest arm always runs
        assert slo["arms_tried"][0]["timed_out"] is True  # honestly flagged
        assert "certificate" in solution.meta
        check_incumbent_trace(solver._as_instance(_workload(), None), solver.last_trace)

    def test_unbounded_deadline_runs_the_whole_portfolio(self):
        solver = _virtual_solver()
        solution = solver.solve(_workload(), deadline_ms=None)
        slo = solution.meta["slo"]
        assert sorted(slo["schedule"]) == sorted(DEFAULT_ARMS)
        assert slo["arms_skipped"] == []
        assert slo["slack_ms"] is None

    def test_unbounded_incumbent_matches_the_portfolio_best(self):
        workload = _workload()
        solver = _virtual_solver()
        solution = solver.solve(workload, deadline_ms=None)
        from repro.parallel.registry import get_solver
        from repro.parallel.seeding import seed_for
        from repro.parallel.fingerprint import instance_fingerprint

        fingerprint = instance_fingerprint(workload)
        best = max(
            (
                get_solver(arm)(workload, seed_for("slo", arm, fingerprint), False)
                for arm in DEFAULT_ARMS
            ),
            key=lambda s: (s.utility, -s.cost),
        )
        assert (solution.utility, solution.cost) == (best.utility, best.cost)

    def test_utility_never_decreases_with_a_longer_deadline(self):
        workload = _workload()
        previous = -1.0
        for deadline in (0.0, 5.0, 10.0, 20.0, 60.0, 120.0, 1000.0, None):
            solver = _virtual_solver()
            solution = solver.solve(workload, deadline_ms=deadline)
            assert solution.utility >= previous
            previous = solution.utility
            check_incumbent_trace(
                solver._as_instance(workload, None), solver.last_trace
            )

    def test_longer_deadlines_admit_weakly_more_arms(self):
        workload = _workload()
        previous = 0
        for deadline in (0.0, 5.0, 20.0, 60.0, 1000.0):
            solution = _virtual_solver().solve(workload, deadline_ms=deadline)
            tried = len(solution.meta["slo"]["schedule"])
            assert tried >= previous
            previous = tried

    def test_run_twice_is_bit_identical(self):
        workload = _workload()
        outcomes = []
        for _ in range(2):
            solver = _virtual_solver()
            solution = solver.solve(workload, deadline_ms=60.0)
            slo = solution.meta["slo"]
            outcomes.append(
                (
                    sorted(solution.classifiers),
                    solution.utility,
                    solution.cost,
                    slo["schedule"],
                    slo["elapsed_ms"],
                    [entry["arm"] for entry in slo["arms_skipped"]],
                )
            )
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_schedule_and_incumbent_are_engine_identical(self, engine):
        workload = _workload()
        with use_engine("sets"):
            reference = _virtual_solver().solve(workload, deadline_ms=60.0)
        with use_engine(engine):
            solution = _virtual_solver().solve(workload, deadline_ms=60.0)
        assert solution.meta["slo"]["schedule"] == reference.meta["slo"]["schedule"]
        assert solution.classifiers == reference.classifiers
        assert solution.utility == reference.utility
        assert solution.cost == reference.cost

    def test_negative_or_nan_deadline_is_rejected(self):
        solver = _virtual_solver()
        with pytest.raises(ValueError):
            solver.solve(_workload(), deadline_ms=-1.0)
        with pytest.raises(ValueError):
            solver.solve(_workload(), deadline_ms=float("nan"))

    def test_budget_is_required_unless_the_workload_carries_one(self):
        workload = _workload()
        bare = workload.clone()
        bare.budget = None
        with pytest.raises(InvalidInstanceError):
            _virtual_solver().solve(bare)
        solution = _virtual_solver().solve(bare, budget=200.0)
        assert solution.cost <= 200.0 + 1e-9

    def test_telemetry_is_complete_and_consistent(self):
        solution = _virtual_solver().solve(_workload(), deadline_ms=20.0)
        slo = solution.meta["slo"]
        for key in (
            "deadline_ms",
            "elapsed_ms",
            "slack_ms",
            "overrun_ms",
            "engine",
            "schedule",
            "arms_tried",
            "arms_skipped",
            "incumbent_updates",
            "observations",
        ):
            assert key in slo
        assert slo["schedule"] == [entry["arm"] for entry in slo["arms_tried"]]
        tried = {entry["arm"] for entry in slo["arms_tried"]}
        skipped = {entry["arm"] for entry in slo["arms_skipped"]}
        assert tried | skipped == set(DEFAULT_ARMS)
        assert tried.isdisjoint(skipped)
        assert slo["incumbent_updates"] == sum(
            1 for entry in slo["arms_tried"] if entry["improved"]
        )

    def test_recording_grows_the_store_and_persists(self, tmp_path):
        path = tmp_path / "stats.json"
        stats = ArmStatsStore(path=path)
        clock = _prior_clock(stats)
        solver = AnytimeMetaSolver(SloConfig(stats=stats, clock=clock, record=True))
        solver.solve(_workload(), deadline_ms=None)
        assert stats.total_observations() == len(DEFAULT_ARMS)
        assert path.exists()
        assert ArmStatsStore(path=path).total_observations() == len(DEFAULT_ARMS)

    def test_record_false_leaves_the_store_untouched(self):
        stats = ArmStatsStore(path=None)
        _virtual_solver(stats=stats).solve(_workload(), deadline_ms=None)
        assert stats.total_observations() == 0

    def test_learned_predictions_steer_the_schedule(self):
        """An arm observed to be slow drops behind cheaper arms."""
        workload = _workload()
        features = instance_features(workload)
        stats = ArmStatsStore(path=None)
        from repro.core.bitset import active_engine

        engine = active_engine()
        # ig1-bcc observed very slow; abcc observed very fast.
        for _ in range(4):
            stats.record("ig1-bcc", engine, features, 5.0, 1.0)
            stats.record("abcc", engine, features, 0.001, 1.0)
        clock = VirtualClock(
            task_seconds=lambda task: stats.predict_runtime(
                task.solver, features, engine
            )
        )
        solution = _virtual_solver(stats=stats, clock=clock).solve(
            workload, deadline_ms=None
        )
        schedule = solution.meta["slo"]["schedule"]
        assert schedule.index("abcc") < schedule.index("ig1-bcc")

    def test_doubled_runtimes_and_deadline_preserve_the_schedule(self):
        """Metamorphic: scaling time itself must not change the policy."""
        workload = _workload()
        features = instance_features(workload)
        from repro.core.bitset import active_engine

        engine = active_engine()
        schedules = []
        for scale in (1.0, 2.0):
            stats = ArmStatsStore(path=None)
            for index in range(MIN_FIT_OBSERVATIONS + 2):
                for position, arm in enumerate(DEFAULT_ARMS):
                    stats.record(
                        arm,
                        engine,
                        features_from_counts(10 + index, 20 + index, 5, 3, 1, 1, 2),
                        scale * (0.002 * (position + 1)) * (1.0 + 0.05 * index),
                        1.0,
                    )
            clock = VirtualClock(
                task_seconds=lambda task, s=stats: s.predict_runtime(
                    task.solver, features, engine
                )
            )
            solution = _virtual_solver(stats=stats, clock=clock).solve(
                workload, deadline_ms=scale * 11.0
            )
            slo = solution.meta["slo"]
            schedules.append(
                (slo["schedule"], sorted(solution.classifiers), solution.utility)
            )
        assert schedules[0] == schedules[1]

    def test_higher_safety_margin_admits_fewer_arms(self):
        workload = _workload()
        relaxed = _virtual_solver(safety=1.0).solve(workload, deadline_ms=60.0)
        cautious = _virtual_solver(safety=1.5).solve(workload, deadline_ms=60.0)
        assert len(cautious.meta["slo"]["schedule"]) < len(
            relaxed.meta["slo"]["schedule"]
        )

    def test_skipped_arms_report_their_predictions(self):
        solution = _virtual_solver().solve(_workload(), deadline_ms=0.0)
        for entry in solution.meta["slo"]["arms_skipped"]:
            assert entry["predicted_ms"] > 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SloConfig(arms=())
        with pytest.raises(ValueError):
            SloConfig(safety=0.0)

    def test_solve_slo_wrapper_matches_the_class(self):
        workload = _workload()
        stats = ArmStatsStore(path=None)
        config = SloConfig(stats=stats, clock=_prior_clock(stats), record=False)
        via_wrapper = solve_slo(workload, deadline_ms=20.0, config=config)
        stats2 = ArmStatsStore(path=None)
        config2 = SloConfig(stats=stats2, clock=_prior_clock(stats2), record=False)
        via_class = AnytimeMetaSolver(config2).solve(workload, deadline_ms=20.0)
        assert via_wrapper.classifiers == via_class.classifiers
        assert via_wrapper.meta["slo"]["schedule"] == via_class.meta["slo"]["schedule"]

    def test_overrun_is_recorded_honestly(self):
        """A mispredicted first arm overruns the deadline; telemetry says so."""
        clock = VirtualClock(task_seconds=lambda task: 1.0)  # every arm: 1s
        solution = _virtual_solver(clock=clock).solve(_workload(), deadline_ms=1.0)
        slo = solution.meta["slo"]
        assert slo["overrun_ms"] == pytest.approx(999.0)
        assert slo["arms_tried"][0]["timed_out"] is True


# ----------------------------------------------------------------------
# the incumbent-dominance verifier
# ----------------------------------------------------------------------
class TestIncumbentTraceVerifier:
    def _instance(self):
        return BCCInstance(
            [fs("a"), fs("b")],
            {fs("a"): 2.0, fs("b"): 3.0},
            {fs("a"): 1.0, fs("b"): 1.0},
            budget=2.0,
        )

    def test_empty_trace_is_rejected(self):
        with pytest.raises(IncumbentCertificateError):
            check_incumbent_trace(self._instance(), [])

    def test_valid_trace_passes(self):
        instance = self._instance()
        trace = [
            evaluate(instance, []),
            evaluate(instance, [fs("b")]),
            evaluate(instance, [fs("a"), fs("b")]),
        ]
        check_incumbent_trace(instance, trace)

    def test_utility_regression_is_rejected(self):
        instance = self._instance()
        trace = [evaluate(instance, [fs("b")]), evaluate(instance, [fs("a")])]
        with pytest.raises(IncumbentCertificateError):
            check_incumbent_trace(instance, trace)

    def test_costlier_equal_utility_incumbent_is_rejected(self):
        instance = BCCInstance(
            [fs("a")],
            {fs("a"): 2.0},
            {fs("a"): 1.0, fs("b"): 1.0},
            budget=2.0,
        )
        cheap = evaluate(instance, [fs("a")])
        costly = evaluate(instance, [fs("a"), fs("b")])
        with pytest.raises(IncumbentCertificateError):
            check_incumbent_trace(instance, [cheap, costly])

    def test_infeasible_entry_is_rejected(self):
        instance = self._instance()
        overspent = evaluate(instance, [fs("a"), fs("b")])
        tight = instance.with_budget(1.0)
        with pytest.raises(IncumbentCertificateError):
            check_incumbent_trace(tight, [overspent])


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_virtual_run_exits_cleanly(self, capsys):
        from repro.slo.cli import main

        code = main(["--virtual", "--deadline-ms", "10", "--components", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "incumbent:" in out
        assert "certified" in out

    def test_json_report_is_written(self, tmp_path, capsys):
        from repro.slo.cli import main

        report = tmp_path / "slo.json"
        code = main(
            ["--virtual", "--deadline-ms", "0", "--components", "3", "--json", str(report)]
        )
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["slo"]["deadline_ms"] == 0.0
        assert payload["slo"]["schedule"]
