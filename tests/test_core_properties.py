"""Unit tests for repro.core.properties."""

import pytest

from repro.core import format_props, from_letters, from_phrase, props, universe


class TestProps:
    def test_basic_construction(self):
        assert props("wooden", "table") == frozenset({"wooden", "table"})

    def test_single_property(self):
        assert props("wooden") == frozenset({"wooden"})

    def test_duplicates_collapse(self):
        assert props("a", "a", "b") == frozenset({"a", "b"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            props()

    def test_empty_string_rejected(self):
        with pytest.raises(ValueError):
            props("a", "")

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            props("a", 3)  # type: ignore[arg-type]


class TestFromLetters:
    def test_letters(self):
        assert from_letters("xyz") == frozenset("xyz")

    def test_case_insensitive(self):
        assert from_letters("XYZ") == from_letters("xyz")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_letters("")


class TestFromPhrase:
    def test_phrase(self):
        assert from_phrase("wooden table") == frozenset({"wooden", "table"})

    def test_whitespace_only_rejected(self):
        with pytest.raises(ValueError):
            from_phrase("   ")


class TestFormatProps:
    def test_query_notation(self):
        assert format_props(from_letters("zyx")) == "xyz"

    def test_classifier_notation(self):
        assert format_props(from_letters("xy"), classifier=True) == "XY"

    def test_multiword(self):
        assert format_props(frozenset({"wooden", "table"})) == "table wooden"


class TestUniverse:
    def test_union(self):
        sets = [from_letters("xy"), from_letters("yz")]
        assert universe(sets) == frozenset("xyz")

    def test_empty_iterable(self):
        assert universe([]) == frozenset()
