"""Unit and property tests for the graph substrate (repro.graphs)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    BipartiteGraph,
    Hypergraph,
    WeightedGraph,
    blow_up,
    random_bipartition,
)
from repro.graphs.bipartite import all_bipartitions, bipartition_rounds
from repro.graphs.blowup import total_integer_cost


def triangle() -> WeightedGraph:
    g = WeightedGraph()
    g.add_node("a", 1.0)
    g.add_node("b", 2.0)
    g.add_node("c", 3.0)
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 3.0)
    return g


class TestWeightedGraph:
    def test_add_and_len(self):
        g = triangle()
        assert len(g) == 3
        assert g.num_edges() == 3

    def test_negative_cost_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_node("a", -1.0)

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_nonpositive_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", 0.0)

    def test_parallel_edges_accumulate(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 2.5)
        assert g.weight("a", "b") == pytest.approx(3.5)
        assert g.num_edges() == 1

    def test_auto_created_endpoints_cost_zero(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        assert g.cost("a") == 0.0

    def test_remove_node(self):
        g = triangle()
        g.remove_node("b")
        assert len(g) == 2
        assert g.num_edges() == 1
        assert g.has_edge("a", "c")

    def test_induced_weight(self):
        g = triangle()
        assert g.induced_weight({"a", "b"}) == pytest.approx(1.0)
        assert g.induced_weight({"a", "b", "c"}) == pytest.approx(6.0)
        assert g.induced_weight({"a"}) == 0.0

    def test_induced_cost(self):
        g = triangle()
        assert g.induced_cost({"a", "c"}) == pytest.approx(4.0)

    def test_weighted_degree_restricted(self):
        g = triangle()
        assert g.weighted_degree("a") == pytest.approx(4.0)
        assert g.weighted_degree("a", within={"b"}) == pytest.approx(1.0)

    def test_subgraph(self):
        g = triangle()
        sub = g.subgraph({"a", "c"})
        assert len(sub) == 2
        assert sub.weight("a", "c") == pytest.approx(3.0)
        assert sub.cost("c") == 3.0

    def test_copy_independent(self):
        g = triangle()
        clone = g.copy()
        clone.remove_node("a")
        assert "a" in g

    def test_connected_components(self):
        g = triangle()
        g.add_node("lonely", 0.0)
        components = sorted(map(sorted, g.connected_components()))
        assert components == [["a", "b", "c"], ["lonely"]]

    def test_edges_iterate_once(self):
        g = triangle()
        assert len(list(g.edges())) == 3


class TestBipartite:
    def test_crossing_edges_only(self):
        g = triangle()
        bi = BipartiteGraph(g, frozenset({"a"}), frozenset({"b", "c"}))
        assert bi.graph.has_edge("a", "b")
        assert bi.graph.has_edge("a", "c")
        assert not bi.graph.has_edge("b", "c")

    def test_overlap_rejected(self):
        g = triangle()
        with pytest.raises(ValueError):
            BipartiteGraph(g, frozenset({"a"}), frozenset({"a", "b"}))

    def test_side_lookup(self):
        g = triangle()
        bi = BipartiteGraph(g, frozenset({"a"}), frozenset({"b", "c"}))
        assert bi.side("a") == "L"
        assert bi.side("c") == "R"
        with pytest.raises(KeyError):
            bi.side("zzz")

    def test_random_bipartition_partitions_all(self):
        g = triangle()
        bi = random_bipartition(g, random.Random(0))
        assert bi.left | bi.right == frozenset({"a", "b", "c"})
        assert not (bi.left & bi.right)

    def test_rounds_logarithmic(self):
        assert bipartition_rounds(1) == 1
        assert bipartition_rounds(2) == 1
        assert bipartition_rounds(1024) == 10

    def test_all_bipartitions_count(self):
        g = triangle()
        splits = all_bipartitions(g, random.Random(1), rounds=5)
        assert len(splits) == 5

    def test_some_split_keeps_half_weight(self):
        # Over enough rounds, some bipartition keeps >= half the total
        # weight of any fixed solution, here the whole triangle.
        g = triangle()
        total = g.total_edge_weight()
        splits = all_bipartitions(g, random.Random(7), rounds=20)
        best = max(s.graph.total_edge_weight() for s in splits)
        assert best >= total / 2.0 - 1e-12


class TestHypergraph:
    def test_add_and_measure(self):
        h = Hypergraph()
        h.add_node("x", 1.0)
        h.add_edge(["x", "y", "z"], 5.0)
        assert len(h) == 3
        assert h.num_edges() == 1
        assert h.induced_weight({"x", "y", "z"}) == 5.0
        assert h.induced_weight({"x", "y"}) == 0.0

    def test_duplicate_edge_accumulates(self):
        h = Hypergraph()
        h.add_edge(["x", "y"], 1.0)
        h.add_edge(["y", "x"], 2.0)
        assert h.num_edges() == 1
        assert h.edge_weight(frozenset({"x", "y"})) == pytest.approx(3.0)

    def test_weighted_degree(self):
        h = Hypergraph()
        h.add_edge(["x", "y"], 1.0)
        h.add_edge(["x", "z"], 2.0)
        assert h.weighted_degree("x") == pytest.approx(3.0)
        assert h.weighted_degree("y") == pytest.approx(1.0)

    def test_remove_node_drops_incident_edges(self):
        h = Hypergraph()
        h.add_edge(["x", "y"], 1.0)
        h.add_edge(["y", "z"], 1.0)
        h.remove_node("y")
        assert h.num_edges() == 0
        assert "x" in h

    def test_max_edge_cardinality(self):
        h = Hypergraph()
        h.add_edge(["x", "y", "z"], 1.0)
        h.add_edge(["x", "y"], 1.0)
        assert h.max_edge_cardinality() == 3

    def test_subhypergraph(self):
        h = Hypergraph()
        h.add_node("x", 2.0)
        h.add_edge(["x", "y"], 1.0)
        h.add_edge(["x", "z"], 4.0)
        sub = h.subhypergraph({"x", "z"})
        assert sub.num_edges() == 1
        assert sub.cost("x") == 2.0

    def test_singleton_edge_allowed(self):
        h = Hypergraph()
        h.add_edge(["x"], 2.0)
        assert h.induced_weight({"x"}) == 2.0


class TestBlowup:
    def test_copy_counts(self):
        g = WeightedGraph()
        g.add_node("a", 2.0)
        g.add_node("b", 3.0)
        g.add_edge("a", "b", 6.0)
        blown = blow_up(g)
        assert blown.num_copies("a") == 2
        assert blown.num_copies("b") == 3
        assert blown.size() == 5

    def test_edge_weight_preserved_in_total(self):
        g = WeightedGraph()
        g.add_node("a", 2.0)
        g.add_node("b", 3.0)
        g.add_edge("a", "b", 6.0)
        blown = blow_up(g)
        # Selecting all copies recovers the original weight.
        assert blown.graph.induced_weight(set(blown.graph.nodes)) == pytest.approx(6.0)

    def test_all_copies_unit_cost(self):
        g = WeightedGraph()
        g.add_node("a", 4.0)
        blown = blow_up(g)
        assert all(blown.graph.cost(c) == 1.0 for c in blown.graph.nodes)

    def test_non_integer_cost_rejected(self):
        g = WeightedGraph()
        g.add_node("a", 1.5)
        with pytest.raises(ValueError):
            blow_up(g)

    def test_zero_cost_rejected(self):
        g = WeightedGraph()
        g.add_node("a", 0.0)
        with pytest.raises(ValueError):
            blow_up(g)

    def test_group_selection(self):
        g = WeightedGraph()
        g.add_node("a", 2.0)
        g.add_node("b", 1.0)
        g.add_edge("a", "b", 1.0)
        blown = blow_up(g)
        counts = blown.group_selection([("a", 0), ("a", 1), ("b", 0)])
        assert counts == {"a": 2, "b": 1}

    def test_total_integer_cost(self):
        g = WeightedGraph()
        g.add_node("a", 2.0)
        g.add_node("b", 3.0)
        assert total_integer_cost(g) == 5


@given(seed=st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_induced_weight_matches_manual(seed):
    rng = random.Random(seed)
    g = WeightedGraph()
    nodes = [f"v{i}" for i in range(8)]
    for node in nodes:
        g.add_node(node, rng.randint(0, 5))
    for _ in range(12):
        u, v = rng.sample(nodes, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.randint(1, 9))
    selection = {n for n in nodes if rng.random() < 0.5}
    manual = sum(
        w for u, v, w in g.edges() if u in selection and v in selection
    )
    assert g.induced_weight(selection) == pytest.approx(manual)
