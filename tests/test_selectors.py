"""White-box tests for the baseline selectors (repro.baselines.selectors)."""

import math

import pytest

from repro.baselines.selectors import IG1Selector, IG2Selector, RandomSelector
from repro.core import BCCInstance, from_letters as fs


def workload():
    return BCCInstance(
        [fs("x"), fs("xy"), fs("yz")],
        {fs("x"): 6.0, fs("xy"): 4.0, fs("yz"): 2.0},
        {
            fs("x"): 2.0,
            fs("y"): 1.0,
            fs("z"): 1.0,
            fs("xy"): 2.0,
            fs("yz"): 3.0,
        },
        budget=10.0,
    )


class TestBaseSelector:
    def test_pool_excludes_infinite(self):
        instance = BCCInstance(
            [fs("xy")], costs={fs("xy"): math.inf}, budget=5.0
        )
        selector = RandomSelector(instance)
        assert fs("xy") not in selector.pool
        assert fs("x") in selector.pool

    def test_add_returns_incremental_cost(self):
        selector = RandomSelector(workload())
        spent = selector.add(frozenset({fs("x"), fs("y")}))
        assert spent == 3.0
        # Re-adding costs nothing.
        assert selector.add(frozenset({fs("x")})) == 0.0

    def test_all_covered(self):
        selector = RandomSelector(workload())
        assert not selector.all_covered()
        selector.add(frozenset({fs("x"), fs("y"), fs("z"), fs("xy"), fs("yz")}))
        assert selector.all_covered()


class TestRandomSelector:
    def test_exhausts_pool_without_budget(self):
        selector = RandomSelector(workload(), seed=1)
        steps = 0
        while True:
            move = selector.step(None)
            if move is None:
                break
            selector.add(move)
            steps += 1
        assert steps == len(selector.pool)

    def test_budget_filtering(self):
        selector = RandomSelector(workload(), seed=2)
        move = selector.step(1.0)
        assert move is not None
        (classifier,) = move
        assert selector.workload.cost(classifier) <= 1.0

    def test_no_affordable_returns_none(self):
        selector = RandomSelector(workload(), seed=0)
        assert selector.step(0.0) is None


class TestIG1Selector:
    def test_picks_best_ratio_query_cover(self):
        selector = IG1Selector(workload())
        move = selector.step(None)
        # x: ratio 6/2 = 3 beats xy (4/2 via XY) and yz (2/2 via Y+Z).
        assert move == frozenset({fs("x")})

    def test_respects_remaining_budget(self):
        selector = IG1Selector(workload())
        move = selector.step(1.0)
        # Only covers costing <= 1 qualify; none cover a query at cost 1
        # except... yz needs 2, xy needs 2, x needs 2 -> nothing.
        assert move is None

    def test_cover_cache_invalidation(self):
        selector = IG1Selector(workload())
        selector.add(selector.step(None))  # picks X
        move = selector.step(None)
        # With X selected, xy's cheapest residual cover is Y (cost 1):
        # ratio 4 beats yz's 1.0.
        assert move == frozenset({fs("y")})

    def test_free_cover_selected_first(self):
        instance = BCCInstance(
            [fs("x"), fs("y")],
            {fs("x"): 1.0, fs("y"): 9.0},
            {fs("x"): 0.0, fs("y"): 5.0},
            budget=5.0,
        )
        selector = IG1Selector(instance)
        assert selector.step(None) == frozenset({fs("x")})


class TestIG2Selector:
    def test_aggregates_containing_queries(self):
        selector = IG2Selector(workload())
        move = selector.step(None)
        # Y appears in xy and yz: mass 6 at cost 1 -> ratio 6 wins.
        assert move == frozenset({fs("y")})

    def test_covered_queries_drop_out(self):
        selector = IG2Selector(workload())
        selector.add(frozenset({fs("x"), fs("y")}))  # covers x, xy
        move = selector.step(None)
        # Only yz is uncovered; Z has ratio 2/1, YZ has 2/3.
        assert move == frozenset({fs("z")})

    def test_zero_cost_classifier_preferred(self):
        instance = BCCInstance(
            [fs("x"), fs("y")],
            {fs("x"): 1.0, fs("y"): 9.0},
            {fs("x"): 0.0, fs("y"): 5.0},
            budget=5.0,
        )
        selector = IG2Selector(instance)
        assert selector.step(None) == frozenset({fs("x")})

    def test_none_when_nothing_gains(self):
        selector = IG2Selector(workload())
        selector.add(frozenset({fs("x"), fs("y"), fs("z")}))
        assert selector.step(None) is None
