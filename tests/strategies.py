"""Shared hypothesis strategies for valid problem instances.

One home for instance generation: bounded query length, optional zero and
infinite costs, and raw duplicate-query streams that canonicalize through
:func:`repro.verify.metamorphic.merge_duplicate_queries`.  Used by
``test_verify.py``, ``test_coverage_engine.py`` and ``test_schema_fuzz.py``
instead of each hand-rolling its own generator.
"""

from __future__ import annotations

import math
from random import Random

from hypothesis import strategies as st

from repro.core import BCCInstance, powerset_classifiers
from repro.serving.requests import PlanRequest, ReplanRequest, WhatIfRequest
from repro.serving.traffic import ServingTrace, TraceItem
from repro.slo.features import features_from_counts
from repro.verify.incremental import random_delta_stream
from repro.verify.metamorphic import merge_duplicate_queries

_PROPERTY_ALPHABET = "abcdefgh"


def property_names(max_size: int = 3) -> st.SearchStrategy:
    """Short property names over a fixed alphabet."""
    return st.text(alphabet=_PROPERTY_ALPHABET, min_size=1, max_size=max_size)


def queries(max_length: int = 3) -> st.SearchStrategy:
    """Non-empty property sets of bounded cardinality (valid queries)."""
    return st.frozensets(property_names(), min_size=1, max_size=max_length)


@st.composite
def cost_maps(
    draw,
    query_list,
    allow_zero: bool = True,
    allow_inf: bool = True,
    max_cost: float = 50.0,
):
    """Costs for a random subset of the relevant classifiers of ``query_list``.

    Unlisted classifiers fall back to the instance default, matching how
    analysts under-specify costs in practice.
    """
    costs = {}
    for query in query_list:
        for classifier in powerset_classifiers(query):
            if not draw(st.booleans()):
                continue
            if allow_inf and draw(st.integers(0, 9)) == 0:
                costs[classifier] = math.inf
            elif allow_zero and draw(st.integers(0, 9)) == 0:
                costs[classifier] = 0.0
            else:
                costs[classifier] = draw(
                    st.floats(0.0, max_cost, allow_nan=False, allow_infinity=False)
                )
    return costs


@st.composite
def bcc_instances(
    draw,
    max_queries: int = 6,
    max_length: int = 3,
    allow_zero_cost: bool = True,
    allow_inf_cost: bool = True,
    max_cost: float = 50.0,
    max_budget: float = 1000.0,
):
    """Valid :class:`BCCInstance` values: bounded ``l``, zero/inf costs.

    Queries arrive as a raw duplicated stream and are canonicalized with
    the shared merge helper, so the strategies exercise the same
    duplicate-handling path production loaders use.
    """
    raw_queries = draw(st.lists(queries(max_length), min_size=1, max_size=2 * max_queries))
    entries = [
        (q, draw(st.floats(0.1, 100.0, allow_nan=False, allow_infinity=False)))
        for q in raw_queries
    ]
    query_list, utilities = merge_duplicate_queries(entries)
    query_list = query_list[:max_queries]
    utilities = {q: utilities[q] for q in query_list}
    costs = draw(
        cost_maps(
            query_list,
            allow_zero=allow_zero_cost,
            allow_inf=allow_inf_cost,
            max_cost=max_cost,
        )
    )
    budget = draw(st.floats(0.0, max_budget, allow_nan=False, allow_infinity=False))
    return BCCInstance(query_list, utilities, costs, budget=budget)


@st.composite
def reencoded_bcc_pairs(draw, max_queries: int = 5, max_length: int = 3):
    """An instance plus a semantically identical re-encoding of it.

    The twin differs only in representation: permuted query order,
    shuffled utility/cost dict insertion order, and int-valued floats
    re-expressed as ``int`` (``2.0`` → ``2``).  Canonical fingerprints
    must treat the two as the same instance.
    """
    instance = draw(
        bcc_instances(max_queries=max_queries, max_length=max_length, allow_inf_cost=False)
    )

    def requote(value: float) -> float:
        if draw(st.booleans()) and float(value).is_integer() and abs(value) < 2**53:
            return int(value)
        return value

    queries = draw(st.permutations(list(instance.queries)))
    utilities = {q: requote(instance.utility(q)) for q in draw(st.permutations(queries))}
    cost_items = draw(st.permutations(sorted(instance._costs.items(), key=repr)))
    costs = {c: requote(cost) for c, cost in cost_items}
    twin = instance.__class__(
        list(queries),
        utilities,
        costs,
        budget=requote(instance.budget),
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )
    return instance, twin


@st.composite
def wide_bcc_instances(
    draw,
    min_queries: int = 70,
    max_queries: int = 110,
    max_length: int = 3,
    hub_properties: int = 4,
):
    """Wide-universe instances: hundreds of properties, short plans.

    The matrix engine's target regime — and the shape the narrow
    ``abcdefgh`` alphabet of :func:`bcc_instances` can never produce:
    each query draws most of its (short) property set from its own block
    of a large universe, so the compiled :class:`PropertySpace` spans
    multiple 64-bit words while every individual mask stays sparse.  A
    few shared *hub* properties couple queries across blocks so coverage
    still interacts (otherwise every query is its own shard).  The
    query floor guarantees at least 65 distinct properties — every drawn
    instance genuinely spans multiple ``uint64`` words.
    """
    n_queries = draw(st.integers(min_queries, max_queries))
    query_list = []
    seen = set()
    for block in range(n_queries):
        size = draw(st.integers(1, max_length))
        props = {f"p{block * max_length + offset:04d}" for offset in range(size)}
        if size > 1 and draw(st.integers(0, 2)) == 0:
            hub = draw(st.integers(0, hub_properties - 1))
            props = set(sorted(props)[:-1]) | {f"hub{hub}"}
        query = frozenset(props)
        if query not in seen:
            seen.add(query)
            query_list.append(query)
    utilities = {
        q: float(draw(st.integers(1, 10))) for q in query_list
    }
    # Explicit costs for a sampled sliver of the relevant classifiers
    # (the default cost backs the rest — pricing every classifier of a
    # wide universe would dominate example generation).
    costs = {}
    for query in query_list:
        if draw(st.integers(0, 2)) == 0:
            costs[query] = float(draw(st.integers(0, 9)))
    budget = float(draw(st.integers(1, 2 * n_queries)))
    return BCCInstance(query_list, utilities, costs, budget=budget)


@st.composite
def feature_counts(draw, max_count: int = 500):
    """Raw size counts in the shape ``features_from_counts`` expects."""
    return tuple(draw(st.integers(0, max_count)) for _ in range(7))


@st.composite
def arm_observations(
    draw,
    min_samples: int = 1,
    max_samples: int = 24,
    max_seconds: float = 30.0,
):
    """Synthetic ``(features, seconds)`` runtime observations for one arm.

    Feature vectors go through :func:`repro.slo.features.features_from_counts`
    — fuzzed vectors are exactly the vectors real workloads produce —
    and runtimes span cache-hit zeros up to ``max_seconds``.  Used by
    ``test_slo.py`` to fuzz the cost-model fit (monotone in size,
    never negative, deterministic).
    """
    n = draw(st.integers(min_samples, max_samples))
    samples = []
    for _ in range(n):
        counts = draw(feature_counts())
        seconds = draw(
            st.floats(0.0, max_seconds, allow_nan=False, allow_infinity=False)
        )
        samples.append((features_from_counts(*counts), seconds))
    return samples


@st.composite
def request_streams(
    draw,
    max_tenants: int = 3,
    max_requests: int = 10,
    max_deltas: int = 3,
):
    """Small multi-tenant serving traces — the metamorphic serving unit.

    Tenants draw independent solvable workloads; each tenant's replan
    deltas come from :func:`repro.verify.incremental.random_delta_stream`,
    so every delta validates against the workload state it meets when the
    trace is served in arrival order.  The request mix covers all three
    kinds, budget overrides, and the deadline spectrum (unbounded,
    generous, zero) — ``test_serving.py`` replays each drawn trace under a
    virtual clock and demands byte-identical response sequences across
    runs and worker counts.
    """
    n_tenants = draw(st.integers(1, max_tenants))
    names = [f"tenant{index}" for index in range(n_tenants)]
    tenants = {}
    deltas = {}
    for name in names:
        instance = draw(solvable_instances(max_queries=4))
        tenants[name] = instance
        seed = draw(st.integers(0, 2**16))
        deltas[name] = random_delta_stream(
            instance, max_deltas, Random(seed), fraction=0.4
        )
    items = []
    arrival = 0.0
    for seq in range(draw(st.integers(1, max_requests))):
        arrival += draw(
            st.floats(0.0, 0.01, allow_nan=False, allow_infinity=False)
        )
        name = draw(st.sampled_from(names))
        deadline = draw(st.sampled_from([None, 0.0, 250.0]))
        roll = draw(st.integers(0, 9))
        if roll == 0 and deltas[name]:
            request = ReplanRequest(name, deltas[name].pop(0), deadline_ms=deadline)
        elif roll <= 2:
            budget = draw(
                st.sampled_from([None, round(tenants[name].budget * 0.5, 6)])
            )
            request = WhatIfRequest(name, budget=budget, deadline_ms=deadline)
        else:
            request = PlanRequest(name, deadline_ms=deadline)
        items.append(TraceItem(seq=seq, arrival_s=round(arrival, 9), request=request))
    return ServingTrace(tenants=tenants, items=items)


@st.composite
def solvable_instances(
    draw, max_queries: int = 6, max_length: int = 3, max_cost: int = 9
):
    """Small oracle-friendly instances: integer costs, no infinities,
    budget a fraction of the total cost — the shape solver tests sweep."""
    query_list = sorted(
        draw(st.sets(queries(max_length), min_size=1, max_size=max_queries)),
        key=sorted,
    )
    utilities = {
        q: float(draw(st.integers(1, 10))) for q in query_list
    }
    costs = {}
    total = 0.0
    for query in query_list:
        for classifier in powerset_classifiers(query):
            costs[classifier] = float(draw(st.integers(0, max_cost)))
            total += costs[classifier]
    fraction = draw(st.floats(0.2, 0.8))
    budget = max(1.0, round(total * fraction))
    return BCCInstance(query_list, utilities, costs, budget=budget)
