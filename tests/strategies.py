"""Shared hypothesis strategies for valid problem instances.

One home for instance generation: bounded query length, optional zero and
infinite costs, and raw duplicate-query streams that canonicalize through
:func:`repro.verify.metamorphic.merge_duplicate_queries`.  Used by
``test_verify.py``, ``test_coverage_engine.py`` and ``test_schema_fuzz.py``
instead of each hand-rolling its own generator.
"""

from __future__ import annotations

import math

from hypothesis import strategies as st

from repro.core import BCCInstance, powerset_classifiers
from repro.verify.metamorphic import merge_duplicate_queries

_PROPERTY_ALPHABET = "abcdefgh"


def property_names(max_size: int = 3) -> st.SearchStrategy:
    """Short property names over a fixed alphabet."""
    return st.text(alphabet=_PROPERTY_ALPHABET, min_size=1, max_size=max_size)


def queries(max_length: int = 3) -> st.SearchStrategy:
    """Non-empty property sets of bounded cardinality (valid queries)."""
    return st.frozensets(property_names(), min_size=1, max_size=max_length)


@st.composite
def cost_maps(
    draw,
    query_list,
    allow_zero: bool = True,
    allow_inf: bool = True,
    max_cost: float = 50.0,
):
    """Costs for a random subset of the relevant classifiers of ``query_list``.

    Unlisted classifiers fall back to the instance default, matching how
    analysts under-specify costs in practice.
    """
    costs = {}
    for query in query_list:
        for classifier in powerset_classifiers(query):
            if not draw(st.booleans()):
                continue
            if allow_inf and draw(st.integers(0, 9)) == 0:
                costs[classifier] = math.inf
            elif allow_zero and draw(st.integers(0, 9)) == 0:
                costs[classifier] = 0.0
            else:
                costs[classifier] = draw(
                    st.floats(0.0, max_cost, allow_nan=False, allow_infinity=False)
                )
    return costs


@st.composite
def bcc_instances(
    draw,
    max_queries: int = 6,
    max_length: int = 3,
    allow_zero_cost: bool = True,
    allow_inf_cost: bool = True,
    max_cost: float = 50.0,
    max_budget: float = 1000.0,
):
    """Valid :class:`BCCInstance` values: bounded ``l``, zero/inf costs.

    Queries arrive as a raw duplicated stream and are canonicalized with
    the shared merge helper, so the strategies exercise the same
    duplicate-handling path production loaders use.
    """
    raw_queries = draw(st.lists(queries(max_length), min_size=1, max_size=2 * max_queries))
    entries = [
        (q, draw(st.floats(0.1, 100.0, allow_nan=False, allow_infinity=False)))
        for q in raw_queries
    ]
    query_list, utilities = merge_duplicate_queries(entries)
    query_list = query_list[:max_queries]
    utilities = {q: utilities[q] for q in query_list}
    costs = draw(
        cost_maps(
            query_list,
            allow_zero=allow_zero_cost,
            allow_inf=allow_inf_cost,
            max_cost=max_cost,
        )
    )
    budget = draw(st.floats(0.0, max_budget, allow_nan=False, allow_infinity=False))
    return BCCInstance(query_list, utilities, costs, budget=budget)


@st.composite
def reencoded_bcc_pairs(draw, max_queries: int = 5, max_length: int = 3):
    """An instance plus a semantically identical re-encoding of it.

    The twin differs only in representation: permuted query order,
    shuffled utility/cost dict insertion order, and int-valued floats
    re-expressed as ``int`` (``2.0`` → ``2``).  Canonical fingerprints
    must treat the two as the same instance.
    """
    instance = draw(
        bcc_instances(max_queries=max_queries, max_length=max_length, allow_inf_cost=False)
    )

    def requote(value: float) -> float:
        if draw(st.booleans()) and float(value).is_integer() and abs(value) < 2**53:
            return int(value)
        return value

    queries = draw(st.permutations(list(instance.queries)))
    utilities = {q: requote(instance.utility(q)) for q in draw(st.permutations(queries))}
    cost_items = draw(st.permutations(sorted(instance._costs.items(), key=repr)))
    costs = {c: requote(cost) for c, cost in cost_items}
    twin = instance.__class__(
        list(queries),
        utilities,
        costs,
        budget=requote(instance.budget),
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )
    return instance, twin


@st.composite
def solvable_instances(
    draw, max_queries: int = 6, max_length: int = 3, max_cost: int = 9
):
    """Small oracle-friendly instances: integer costs, no infinities,
    budget a fraction of the total cost — the shape solver tests sweep."""
    query_list = sorted(
        draw(st.sets(queries(max_length), min_size=1, max_size=max_queries)),
        key=sorted,
    )
    utilities = {
        q: float(draw(st.integers(1, 10))) for q in query_list
    }
    costs = {}
    total = 0.0
    for query in query_list:
        for classifier in powerset_classifiers(query):
            costs[classifier] = float(draw(st.integers(0, max_cost)))
            total += costs[classifier]
    fraction = draw(st.floats(0.2, 0.8))
    budget = max(1.0, round(total * fraction))
    return BCCInstance(query_list, utilities, costs, budget=budget)
