"""Tests for the QK solvers (repro.qk)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import WeightedGraph
from repro.qk import QKConfig, solve_qk, solve_qk_exact, solve_qk_taylor


def random_qk_graph(seed: int, n: int = 10, p: float = 0.4, max_cost: int = 6):
    rng = random.Random(seed)
    g = WeightedGraph()
    for i in range(n):
        g.add_node(i, cost=float(rng.randint(0, max_cost)))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j, float(rng.randint(1, 9)))
    return g


def path_graph(costs, weights):
    g = WeightedGraph()
    for i, c in enumerate(costs):
        g.add_node(i, cost=float(c))
    for i, w in enumerate(weights):
        g.add_edge(i, i + 1, float(w))
    return g


class TestExactOracle:
    def test_takes_best_edge(self):
        g = path_graph([1, 1, 1], [5, 1])
        best = solve_qk_exact(g, 2.0)
        assert best == frozenset({0, 1})
        assert g.induced_weight(best) == 5.0

    def test_budget_zero(self):
        g = path_graph([1, 1], [5])
        best = solve_qk_exact(g, 0.0)
        assert g.induced_weight(best) == 0.0

    def test_zero_cost_nodes_free(self):
        g = path_graph([0, 0, 1], [5, 1])
        best = solve_qk_exact(g, 0.0)
        assert g.induced_weight(best) == 5.0

    def test_too_large_rejected(self):
        g = random_qk_graph(0, n=25)
        with pytest.raises(ValueError):
            solve_qk_exact(g, 5.0)

    def test_respects_budget(self):
        g = random_qk_graph(1)
        best = solve_qk_exact(g, 7.0)
        assert g.induced_cost(best) <= 7.0 + 1e-9


class TestHeuristicBasics:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            solve_qk(WeightedGraph(), -1.0)

    def test_empty_graph(self):
        assert solve_qk(WeightedGraph(), 5.0) == frozenset()

    def test_single_edge(self):
        g = path_graph([1, 1], [5])
        selection = solve_qk(g, 2.0)
        assert g.induced_weight(selection) == 5.0

    def test_zero_cost_nodes_always_selected(self):
        g = path_graph([0, 0, 3], [5, 1])
        selection = solve_qk(g, 0.0)
        assert {0, 1} <= selection
        assert g.induced_weight(selection) == 5.0

    def test_bonus_from_zero_cost_neighbor(self):
        # Node 0 is free; selecting node 1 (cost 2) should be preferred to
        # the 2-3 edge of smaller weight.
        g = WeightedGraph()
        g.add_node(0, 0.0)
        g.add_node(1, 2.0)
        g.add_node(2, 1.0)
        g.add_node(3, 1.0)
        g.add_edge(0, 1, 10.0)
        g.add_edge(2, 3, 3.0)
        selection = solve_qk(g, 2.0)
        assert g.induced_weight(selection) == 10.0

    def test_too_expensive_nodes_pruned(self):
        g = path_graph([100, 100], [5])
        selection = solve_qk(g, 10.0)
        assert selection == frozenset()

    def test_expensive_pair_enumeration(self):
        # The only good solution is two expensive nodes (each >= B/2).
        g = WeightedGraph()
        g.add_node("a", 5.0)
        g.add_node("b", 5.0)
        g.add_edge("a", "b", 100.0)
        g.add_node("c", 1.0)
        g.add_node("d", 1.0)
        g.add_edge("c", "d", 1.0)
        selection = solve_qk(g, 10.0)
        assert {"a", "b"} <= selection

    def test_single_expensive_plus_cheap(self):
        # One expensive hub plus cheap satellites beats anything cheap-only.
        g = WeightedGraph()
        g.add_node("hub", 6.0)
        for i in range(4):
            g.add_node(i, 1.0)
            g.add_edge("hub", i, 10.0)
        g.add_edge(0, 1, 1.0)
        selection = solve_qk(g, 10.0)
        assert "hub" in selection
        assert g.induced_weight(selection) >= 40.0

    def test_budget_respected(self):
        g = random_qk_graph(7)
        selection = solve_qk(g, 8.0)
        assert g.induced_cost(selection) <= 8.0 + 1e-9


class TestHeuristicQuality:
    @given(seed=st.integers(0, 400), budget=st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_at_least_half_of_optimum(self, seed, budget):
        g = random_qk_graph(seed, n=9, p=0.5, max_cost=5)
        optimal = g.induced_weight(solve_qk_exact(g, budget))
        got = g.induced_weight(solve_qk(g, budget, QKConfig(seed=1)))
        # Theorem 4.7 allows up to (5 alpha); empirically we demand >= 1/2.
        assert got >= optimal / 2.0 - 1e-9

    def test_dense_block_found(self):
        # A cheap dense block against expensive scattered edges.
        g = WeightedGraph()
        for i in range(4):
            g.add_node(("block", i), 1.0)
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(("block", i), ("block", j), 5.0)
        for i in range(6):
            g.add_node(("noise", i), 3.0)
        for i in range(0, 6, 2):
            g.add_edge(("noise", i), ("noise", i + 1), 4.0)
        selection = solve_qk(g, 4.0, QKConfig(seed=0))
        assert g.induced_weight(selection) == pytest.approx(30.0)


class TestTaylor:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            solve_qk_taylor(WeightedGraph(), -1.0)

    def test_empty_graph(self):
        assert solve_qk_taylor(WeightedGraph(), 3.0) == frozenset()

    def test_single_edge(self):
        g = path_graph([1, 1], [5])
        selection = solve_qk_taylor(g, 2.0)
        assert g.induced_weight(selection) == 5.0

    def test_budget_respected(self):
        g = random_qk_graph(3)
        selection = solve_qk_taylor(g, 9.0)
        assert g.induced_cost(selection) <= 9.0 + 1e-9

    @given(seed=st.integers(0, 200), budget=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_feasible_and_nontrivial(self, seed, budget):
        g = random_qk_graph(seed, n=8, p=0.5, max_cost=4)
        selection = solve_qk_taylor(g, budget)
        assert g.induced_cost(selection) <= budget + 1e-9
        optimal = g.induced_weight(solve_qk_exact(g, budget))
        got = g.induced_weight(selection)
        if optimal > 0:
            # Worst-case algorithm: demand a quarter of the optimum here.
            assert got >= optimal / 4.0 - 1e-9

    def test_heuristic_usually_beats_taylor(self):
        """Ablation sanity: A_H^QK should dominate A_T^QK on most seeds."""
        wins = 0
        for seed in range(10):
            g = random_qk_graph(seed, n=12, p=0.4)
            b = 10.0
            h = g.induced_weight(solve_qk(g, b, QKConfig(seed=0)))
            t = g.induced_weight(solve_qk_taylor(g, b))
            if h >= t - 1e-9:
                wins += 1
        assert wins >= 7
