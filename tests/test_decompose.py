"""Property-based wall around the workload decomposition engine.

Structural invariants of :func:`repro.decompose.partition_workload`
(shards partition ``Q``, no usable classifier crosses shards, engines
agree), exactness of the allocator (grouped DP vs. pareto merge), and
end-to-end guarantees of :func:`repro.decompose.solve_bcc_sharded`
(feasibility, certificates, ≥-monolithic utility on the seeded corpus,
exact equality when the budget is non-binding).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bcc import solve_bcc
from repro.core import BCCInstance, from_letters as fs
from repro.core.bitset import use_engine
from repro.decompose import (
    ProfilePoint,
    ShardedConfig,
    allocate,
    budget_grid,
    pareto_profile,
    partition_workload,
    solve_bcc_sharded,
)
from repro.decompose.allocator import _pareto_allocate
from repro.verify.certificate import verify_solution
from repro.verify.corpus import corpus

from .strategies import bcc_instances, solvable_instances

_TOL = 1e-9


def _saturation_budget(instance: BCCInstance) -> float:
    """Total finite relevant-classifier cost: past it the budget is slack."""
    return sum(
        cost
        for cost in (instance.cost(c) for c in instance.relevant_classifiers())
        if not math.isinf(cost)
    )


# ----------------------------------------------------------------------
# partition structure
# ----------------------------------------------------------------------
@given(instance=bcc_instances())
def test_shards_partition_the_queries(instance):
    partition = partition_workload(instance)
    flattened = [q for shard in partition.shards for q in shard]
    assert sorted(flattened, key=sorted) == sorted(instance.queries, key=sorted)
    assert len(flattened) == len(set(flattened)) == len(instance.queries)
    for index, shard in enumerate(partition.shards):
        for query in shard:
            assert partition.query_to_shard[query] == index


@given(instance=bcc_instances())
def test_no_usable_classifier_crosses_shards(instance):
    """The load-bearing invariant: every finite-cost relevant classifier's
    containing queries live in one shard, so selections cannot interact."""
    partition = partition_workload(instance)
    for classifier in instance.relevant_classifiers():
        if math.isinf(instance.cost(classifier)):
            continue
        owners = {
            partition.query_to_shard[q]
            for q in instance.queries_containing(classifier)
        }
        assert len(owners) <= 1, (
            f"classifier {sorted(classifier)} is usable from shards {owners}"
        )


@given(instance=bcc_instances())
def test_partition_is_engine_identical(instance):
    with use_engine("sets"):
        sets_partition = partition_workload(instance)
    with use_engine("bits"):
        bits_partition = partition_workload(instance)
    assert sets_partition.shards == bits_partition.shards
    assert sets_partition.dead_properties == bits_partition.dead_properties


@given(instance=bcc_instances())
def test_shard_workloads_preserve_semantics(instance):
    """Restricting keeps each kept query's utility and each still-relevant
    classifier's cost bit-identical to the parent workload."""
    partition = partition_workload(instance)
    for index in range(partition.num_shards):
        view = partition.shard_workload(index)
        for query in view.queries:
            assert view.utility(query) == instance.utility(query)
        for classifier in view.relevant_classifiers():
            assert view.cost(classifier) == instance.cost(classifier)


def test_dead_properties_do_not_merge_shards():
    # 'x' is shared by both queries but every classifier testing it is
    # infinite, so it cannot couple them: two shards, 'x' reported dead.
    queries = [fs("ax"), fs("bx")]
    utilities = {fs("ax"): 4.0, fs("bx"): 2.0}
    costs = {
        fs("a"): 1.0,
        fs("b"): 1.0,
        fs("x"): math.inf,
        fs("ax"): math.inf,
        fs("bx"): math.inf,
    }
    instance = BCCInstance(queries, utilities, costs, budget=10.0)
    partition = partition_workload(instance)
    assert partition.num_shards == 2
    assert partition.dead_properties == ("x",)


def test_shared_finite_pair_merges_even_with_infinite_singleton():
    # The singleton {x} is priced infinite but the pair {a, x} is finite
    # and a subset of both queries, so the queries must share a shard.
    queries = [fs("axy"), fs("axz")]
    utilities = {fs("axy"): 3.0, fs("axz"): 3.0}
    costs = {fs("x"): math.inf, fs("a"): math.inf, fs("ax"): 2.0}
    instance = BCCInstance(
        queries, utilities, costs, budget=10.0, default_cost=math.inf
    )
    partition = partition_workload(instance)
    assert partition.num_shards == 1


# ----------------------------------------------------------------------
# budget grids and allocation
# ----------------------------------------------------------------------
@given(
    costs=st.lists(st.integers(0, 20).map(float), max_size=8),
    budget=st.floats(0.0, 100.0, allow_nan=False),
    max_points=st.integers(2, 12),
)
def test_budget_grid_shape(costs, budget, max_points):
    grid = budget_grid(costs, budget, max_points=max_points)
    assert grid == sorted(set(grid))
    assert len(grid) <= max_points
    assert grid[0] == 0.0
    top = min(budget, sum(costs))
    if top > _TOL:
        assert grid[-1] == pytest.approx(top)
    assert all(point <= budget + _TOL for point in grid)


def test_budget_grid_enumerates_reachable_spends():
    grid = budget_grid([3.0, 5.0], budget=100.0, max_points=12)
    assert grid == [0.0, 3.0, 5.0, 8.0]


def test_budget_grid_rejects_degenerate_cap():
    with pytest.raises(ValueError):
        budget_grid([1.0], 10.0, max_points=1)


@given(
    points=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        min_size=1,
        max_size=8,
    )
)
def test_pareto_profile_is_a_frontier(points):
    profile = pareto_profile(
        [
            ProfilePoint(cost=float(c), utility=float(u), key=f"k{i}")
            for i, (c, u) in enumerate(points)
        ]
    )
    costs = [p.cost for p in profile]
    utilities = [p.utility for p in profile]
    assert costs == sorted(costs)
    assert utilities == sorted(utilities)
    assert len(set(utilities)) == len(utilities)
    assert max(u for _, u in points) == pytest.approx(profile[-1].utility)


@given(
    profiles=st.lists(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=4,
    ),
    budget=st.integers(0, 40),
)
def test_grouped_dp_and_pareto_merge_agree(profiles, budget):
    """The two allocator paths are both exact, so on integral costs they
    must find the same optimal value."""
    shaped = [
        [
            ProfilePoint(cost=float(c), utility=float(u), key=f"s{i}/p{j}")
            for j, (c, u) in enumerate(points)
        ]
        for i, points in enumerate(profiles)
    ]
    value, chosen, path = allocate(shaped, float(budget))
    assert path == "grouped-dp"
    merge_value, merge_chosen = _pareto_allocate(
        [pareto_profile(points) for points in shaped], float(budget)
    )
    assert value == pytest.approx(merge_value)
    spend = sum(p.cost for p in chosen if p is not None)
    assert spend <= budget + _TOL
    assert sum(p.utility for p in chosen if p is not None) == pytest.approx(value)


def test_allocate_falls_back_to_pareto_merge_on_float_costs():
    shaped = [
        [ProfilePoint(cost=math.pi / 10, utility=2.0, key="s0/a")],
        [ProfilePoint(cost=math.sqrt(2) / 10, utility=3.0, key="s1/a")],
    ]
    value, chosen, path = allocate(shaped, 1.0)
    assert path == "pareto-merge"
    assert value == pytest.approx(5.0)
    assert [p is not None for p in chosen] == [True, True]


# ----------------------------------------------------------------------
# the sharded solver, end to end
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(instance=solvable_instances())
def test_sharded_solution_is_feasible_and_certified(instance):
    solution = solve_bcc_sharded(
        instance, ShardedConfig(jobs=1), certify=True, seed=11
    )
    assert solution.cost <= instance.budget + _TOL
    certificate = solution.meta["certificate"]
    verify_solution(instance, solution, certificate=certificate, budget=instance.budget)


@pytest.mark.parametrize("case", corpus(seeds=range(2)), ids=lambda c: c.name)
def test_sharded_never_below_monolithic_on_corpus(case):
    monolithic = solve_bcc(case.instance)
    sharded = solve_bcc_sharded(case.instance, ShardedConfig(jobs=1), seed=3)
    assert sharded.utility >= monolithic.utility - _TOL
    assert sharded.cost <= case.instance.budget + _TOL


@pytest.mark.parametrize("case", corpus(seeds=range(2)), ids=lambda c: c.name)
def test_sharded_equals_monolithic_when_budget_non_binding(case):
    instance = case.instance.with_budget(_saturation_budget(case.instance) + 1.0)
    monolithic = solve_bcc(instance)
    sharded = solve_bcc_sharded(instance, ShardedConfig(jobs=1), seed=3)
    assert sharded.utility == pytest.approx(monolithic.utility)
    decompose = sharded.meta["decompose"]
    if decompose["shards"] > 1:
        assert decompose["path"] == "non-binding"


def test_single_shard_degrades_to_monolithic(fig1_b4):
    solution = solve_bcc_sharded(fig1_b4, ShardedConfig(jobs=1))
    monolithic = solve_bcc(fig1_b4)
    assert solution.utility == pytest.approx(monolithic.utility)
    assert solution.classifiers == monolithic.classifiers
    assert solution.meta["decompose"]["path"] == "monolithic-fallback"


def test_sharded_meta_records_the_decomposition():
    queries = [fs("ab"), fs("cd"), fs("ef")]
    utilities = {q: 5.0 for q in queries}
    costs = {fs(x): 2.0 for x in "abcdef"}
    instance = BCCInstance(queries, utilities, costs, budget=4.0)
    solution = solve_bcc_sharded(instance, ShardedConfig(jobs=1), seed=0)
    decompose = solution.meta["decompose"]
    assert decompose["shards"] == 3
    assert decompose["tasks"] >= 3
    assert len(decompose["shard_budgets"]) == 3
    assert solution.cost <= 4.0 + _TOL


def test_sharded_certificates_verify_under_both_engines():
    queries = [fs("ab"), fs("cd")]
    utilities = {fs("ab"): 4.0, fs("cd"): 6.0}
    costs = {fs(x): 1.0 for x in "abcd"}
    instance = BCCInstance(queries, utilities, costs, budget=10.0)
    for engine in ("sets", "bits"):
        with use_engine(engine):
            solution = solve_bcc_sharded(
                instance, ShardedConfig(jobs=1), certify=True
            )
            verify_solution(
                instance,
                solution,
                certificate=solution.meta["certificate"],
                budget=instance.budget,
            )
            assert solution.utility == pytest.approx(10.0)
