"""Unit tests for repro.core.solution."""

import dataclasses
import math

import pytest

from repro.core import (
    BCCInstance,
    BudgetExceededError,
    best_solution,
    check_budget,
    evaluate,
    from_letters as fs,
    props,
)


class TestEvaluate:
    def test_fig1_b3_optimal(self, fig1_b3):
        solution = evaluate(fig1_b3, [fs("yz"), fs("xyz")])
        assert solution.utility == 8.0
        assert solution.cost == 3.0
        assert solution.covered == frozenset({fs("xyz")})

    def test_fig1_b4_optimal(self, fig1_b4):
        solution = evaluate(fig1_b4, [fs("yz"), fs("xz")])
        assert solution.utility == 9.0
        assert solution.cost == 4.0

    def test_fig1_b11_optimal(self, fig1_b11):
        solution = evaluate(fig1_b11, [fs("yz"), fs("x"), fs("y"), fs("z")])
        assert solution.utility == 11.0
        assert solution.cost == 11.0

    def test_free_classifier_optional(self, fig1_b3):
        # {XYZ} alone has the same utility as {YZ, XYZ} (Example 2.1).
        with_free = evaluate(fig1_b3, [fs("yz"), fs("xyz")])
        without = evaluate(fig1_b3, [fs("xyz")])
        assert with_free.utility == without.utility

    def test_empty_solution(self, fig1_b3):
        solution = evaluate(fig1_b3, [])
        assert solution.utility == 0.0
        assert solution.cost == 0.0
        assert solution.covered == frozenset()

    def test_meta_recorded(self, fig1_b3):
        solution = evaluate(fig1_b3, [], meta={"algorithm": "test"})
        assert solution.meta["algorithm"] == "test"


class TestRatio:
    def test_ratio(self, fig1_b4):
        solution = evaluate(fig1_b4, [fs("yz"), fs("xz")])
        assert solution.ratio == pytest.approx(9.0 / 4.0)

    def test_zero_cost_positive_utility(self, fig1_b3):
        # YZ is free but covers nothing alone -> ratio 0 at cost 0.
        solution = evaluate(fig1_b3, [fs("yz")])
        assert solution.ratio == 0.0

    def test_zero_cost_with_utility_is_inf(self):
        instance = BCCInstance([fs("x")], costs={fs("x"): 0.0}, budget=1.0)
        solution = evaluate(instance, [fs("x")])
        assert solution.ratio == math.inf

    def test_infinite_cost_with_utility_is_zero(self, fig1_b4):
        # XY covers query xy (utility 2) but costs inf: ratio 2/inf = 0,
        # never NaN and never a ZeroDivisionError.
        solution = evaluate(fig1_b4, [fs("xy")])
        assert math.isinf(solution.cost)
        assert solution.utility == 2.0
        assert solution.ratio == 0.0

    def test_infinite_cost_zero_utility_is_zero(self, fig1_b3):
        solution = evaluate(fig1_b3, [fs("xy"), fs("yz")])  # nothing covered
        assert math.isinf(solution.cost)
        assert solution.ratio == 0.0


class TestCheckBudget:
    def test_within_budget_passes(self, fig1_b4):
        check_budget(fig1_b4, evaluate(fig1_b4, [fs("yz"), fs("xz")]))

    def test_exceeding_raises(self, fig1_b3):
        solution = evaluate(fig1_b3, [fs("x")])  # cost 5 > budget 3
        with pytest.raises(BudgetExceededError):
            check_budget(fig1_b3, solution)

    def test_tiny_float_slack_tolerated(self, fig1_b3):
        solution = evaluate(fig1_b3, [fs("xyz")])
        # cost exactly equals the budget
        check_budget(fig1_b3, solution)

    def test_infinite_cost_exceeds_any_finite_budget(self, fig1_b4):
        solution = evaluate(fig1_b4, [fs("xy")])
        with pytest.raises(BudgetExceededError):
            check_budget(fig1_b4, solution)

    def test_slack_boundary(self, fig1_b3):
        base = evaluate(fig1_b3, [fs("xyz")])  # cost 3.0 == budget
        within = dataclasses.replace(base, cost=3.0 * (1.0 + 1e-9))
        check_budget(fig1_b3, within)
        beyond = dataclasses.replace(base, cost=3.0 + 1e-6)
        with pytest.raises(BudgetExceededError):
            check_budget(fig1_b3, beyond)

    def test_error_message_names_both_numbers(self, fig1_b3):
        solution = evaluate(fig1_b3, [fs("x")])
        with pytest.raises(BudgetExceededError, match=r"cost 5.*budget 3"):
            check_budget(fig1_b3, solution)


class TestDescribe:
    def test_sorted_by_formatted_name(self, fig1_b4):
        solution = evaluate(fig1_b4, [fs("yz"), fs("xz")])
        lines = solution.describe().splitlines()
        assert lines[1:] == ["  + XZ", "  + YZ"]

    def test_multi_word_properties_sort_by_rendered_form(self):
        # Regression: describe used to sort by the raw property lists;
        # it must sort by the same formatted names it prints.
        wooden, table = props("wooden"), props("table")
        query = props("wooden", "table")
        instance = BCCInstance(
            [query], costs={wooden: 1.0, table: 1.0, query: 3.0}, budget=3.0
        )
        solution = evaluate(instance, [wooden, table])
        lines = solution.describe().splitlines()
        assert lines[1:] == ["  + TABLE", "  + WOODEN"]

    def test_truncation(self, fig1_b11):
        solution = evaluate(fig1_b11, [fs("yz"), fs("x"), fs("y"), fs("z")])
        text = solution.describe(max_items=1)
        assert "... and 3 more" in text
        assert text.splitlines()[1] == "  + X"


class TestBestSolution:
    def test_picks_highest_utility(self, fig1_b4):
        a = evaluate(fig1_b4, [fs("xyz")])  # utility 8
        b = evaluate(fig1_b4, [fs("yz"), fs("xz")])  # utility 9
        assert best_solution(a, b) is b

    def test_tie_prefers_cheaper(self, fig1_b3):
        a = evaluate(fig1_b3, [fs("yz"), fs("xyz")])  # utility 8, cost 3
        b = evaluate(fig1_b3, [fs("xyz")])  # utility 8, cost 3 minus free
        assert best_solution(a, b).cost <= a.cost

    def test_none_filtered(self, fig1_b3):
        a = evaluate(fig1_b3, [fs("xyz")])
        assert best_solution(None, a) is a

    def test_all_none_raises(self):
        with pytest.raises(ValueError):
            best_solution(None, None)
