"""White-box tests for the A_T^QK worst-case algorithm internals."""

import pytest

from repro.dks.portfolio import HksPortfolio
from repro.graphs import WeightedGraph
from repro.qk.taylor import (
    _class_subgraph,
    _normalized_classes,
    _procedure_p1,
    _procedure_p3,
)


def weighted_instance():
    g = WeightedGraph()
    g.add_node("a", 1.0)
    g.add_node("b", 2.0)
    g.add_node("c", 8.0)
    g.add_edge("a", "b", 4.0)
    g.add_edge("b", "c", 16.0)
    g.add_edge("a", "c", 1.0)
    return g


class TestNormalizedClasses:
    def test_every_kept_edge_in_exactly_one_class(self):
        g = weighted_instance()
        classes, scaled_cost, scaled_budget = _normalized_classes(g, 10.0)
        kept = [edge for edges in classes.values() for edge in edges]
        assert len(kept) == len(set(kept))
        assert scaled_budget >= 1

    def test_scaled_costs_are_powers_of_two(self):
        g = weighted_instance()
        _, scaled_cost, _ = _normalized_classes(g, 10.0)
        for value in scaled_cost.values():
            assert value & (value - 1) == 0  # power of two

    def test_light_edges_pruned(self):
        g = WeightedGraph()
        g.add_node(0, 1.0)
        g.add_node(1, 1.0)
        g.add_node(2, 1.0)
        g.add_edge(0, 1, 1000.0)
        g.add_edge(1, 2, 0.0001)  # below w_max / n^2
        classes, _, _ = _normalized_classes(g, 4.0)
        kept = [edge for edges in classes.values() for edge in edges]
        assert (0, 1) in kept or (1, 0) in kept
        assert all(set(edge) != {1, 2} for edge in kept)

    def test_empty_graph(self):
        assert _normalized_classes(WeightedGraph(), 5.0) == ({}, {}, 0)

    def test_class_indices_ordered(self):
        g = weighted_instance()
        classes, _, _ = _normalized_classes(g, 10.0)
        for (i, j, t) in classes:
            assert i >= j >= 0
            assert t >= 0


class TestClassSubgraph:
    def test_costs_come_from_scaled_map(self):
        g = weighted_instance()
        sub = _class_subgraph(g, [("a", "b")], {"a": 2, "b": 4, "c": 8})
        assert sub.cost("a") == 2.0
        assert sub.cost("b") == 4.0
        assert "c" not in sub
        assert sub.weight("a", "b") == 4.0


def bipartite_case():
    """L = unit-cost nodes, R = weight-w nodes, star around r0."""
    sub = WeightedGraph()
    left = [f"l{i}" for i in range(5)]
    right = ["r0", "r1"]
    for node in left:
        sub.add_node(node, 1.0)
    for node in right:
        sub.add_node(node, 4.0)
    for node in left:
        sub.add_edge(node, "r0", 1.0)
    sub.add_edge("l0", "r1", 1.0)
    return sub, left, right


class TestProcedures:
    def test_p1_selects_high_degree(self):
        sub, left, right = bipartite_case()
        chosen = _procedure_p1(sub, left, right, w=4, budget=8)
        assert "r0" in chosen

    def test_p3_star(self):
        sub, left, right = bipartite_case()
        chosen = _procedure_p3(sub, left, right, w=4, budget=8)
        assert chosen is not None
        assert "r0" in chosen
        # Remaining budget 4 buys four left neighbors.
        assert len(chosen - {"r0"}) == 4

    def test_p3_budget_too_small(self):
        sub, left, right = bipartite_case()
        assert _procedure_p3(sub, left, right, w=4, budget=3) is None

    def test_p3_empty_right(self):
        sub, left, _ = bipartite_case()
        assert _procedure_p3(sub, left, [], w=4, budget=8) is None
