"""Tests for the dataset CLI (python -m repro.datasets)."""

import json

import pytest

from repro.datasets.__main__ import main


class TestGenerate:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "bb.json"
        code = main(
            [
                "generate",
                "--kind",
                "bb",
                "--queries",
                "80",
                "--properties",
                "100",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        capsys.readouterr()  # drop the "wrote ..." line
        code = main(["stats", str(out)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_queries"] == 80

    def test_stats_output_is_json(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        main(
            [
                "generate",
                "--kind",
                "synthetic",
                "--queries",
                "60",
                "--properties",
                "80",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        main(["stats", str(out)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_queries"] == 60

    def test_round_trip_loadable(self, tmp_path):
        from repro.datasets import load_instance

        out = tmp_path / "p.json"
        main(
            [
                "generate",
                "--kind",
                "private",
                "--queries",
                "60",
                "--properties",
                "120",
                "--out",
                str(out),
            ]
        )
        instance = load_instance(out)
        assert instance.num_queries == 60

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "nope", "--out", str(tmp_path / "x.json")])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
