"""Tests for the phase-attribution profiling layer (repro.profile)."""

import pytest

from repro.core import BCCInstance, from_letters as fs
from repro.profile import (
    PhaseProfiler,
    activate,
    add_count,
    current_profiler,
    phase,
    profiling_enabled,
)


class FakeClock:
    """Deterministic monotonic clock: each read advances by `step`."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def _instance() -> BCCInstance:
    queries = [fs("ab"), fs("bc")]
    utilities = {fs("ab"): 3.0, fs("bc"): 2.0}
    costs = {fs("a"): 1.0, fs("b"): 1.0, fs("c"): 1.0, fs("ab"): 1.5, fs("bc"): 1.5}
    return BCCInstance(queries, utilities, costs, budget=4.0)


class TestPhaseProfiler:
    def test_injected_clock_gives_deterministic_seconds(self):
        prof = PhaseProfiler(clock=FakeClock(step=1.0))
        with prof.phase("alpha"):
            pass
        with prof.phase("alpha"):
            pass
        snap = prof.snapshot()
        assert snap["phases"]["alpha"] == {"seconds": 2.0, "calls": 2}

    def test_phases_nest_with_inclusive_times(self):
        clock = FakeClock(step=1.0)
        prof = PhaseProfiler(clock=clock)
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        snap = prof.snapshot()
        assert snap["phases"]["inner"]["calls"] == 1
        assert snap["phases"]["outer"]["seconds"] >= snap["phases"]["inner"]["seconds"]

    def test_counters_accumulate(self):
        prof = PhaseProfiler(clock=FakeClock())
        prof.add_count("probes")
        prof.add_count("probes", 4)
        assert prof.snapshot()["counts"] == {"probes": 5}

    def test_phase_records_even_on_exception(self):
        prof = PhaseProfiler(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with prof.phase("boom"):
                raise RuntimeError
        assert prof.snapshot()["phases"]["boom"]["calls"] == 1


class TestActivation:
    def test_no_active_profiler_by_default(self):
        assert current_profiler() is None

    def test_module_hooks_are_noops_when_inactive(self):
        add_count("ignored")
        with phase("ignored"):
            pass
        assert current_profiler() is None

    def test_activate_scopes_and_unwinds(self):
        prof = PhaseProfiler(clock=FakeClock())
        with activate(prof) as active:
            assert active is prof
            assert current_profiler() is prof
            add_count("hits")
            with phase("span"):
                pass
        assert current_profiler() is None
        snap = prof.snapshot()
        assert snap["counts"] == {"hits": 1}
        assert snap["phases"]["span"]["calls"] == 1

    def test_inner_profiler_shadows_outer(self):
        outer, inner = PhaseProfiler(FakeClock()), PhaseProfiler(FakeClock())
        with activate(outer):
            with activate(inner):
                add_count("x")
        assert inner.counts == {"x": 1}
        assert outer.counts == {}


class TestEnvGate:
    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert profiling_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", " 0 "])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert not profiling_enabled()

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profiling_enabled()


class TestSolveBccIntegration:
    def test_profile_meta_absent_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        from repro.algorithms.bcc import solve_bcc

        solution = solve_bcc(_instance())
        assert "profile" not in solution.meta

    def test_env_var_attaches_profile_meta(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        from repro.algorithms.bcc import solve_bcc

        solution = solve_bcc(_instance())
        profile = solution.meta["profile"]
        assert "prune" in profile["phases"]
        assert profile["counts"]["transpose_rebuilds"] >= 0

    def test_explicit_profiler_sees_phases_and_counters(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        from repro.algorithms.bcc import solve_bcc

        prof = PhaseProfiler()
        with activate(prof):
            solution = solve_bcc(_instance())
        assert solution.meta["profile"] == prof.snapshot()
        assert "tracker_probes" in prof.counts

    def test_profiled_solution_identical_to_unprofiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        from repro.algorithms.bcc import solve_bcc

        plain = solve_bcc(_instance())
        with activate(PhaseProfiler()):
            profiled = solve_bcc(_instance())
        assert profiled.classifiers == plain.classifiers
        assert profiled.utility == plain.utility
        assert profiled.cost == plain.cost
