"""Dynamic BCC: deltas, mutation safety, partition maintenance, warm==cold."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BCCInstance, CoverageTracker, from_letters as fs
from repro.core.bitset import compile_workload, use_engine
from repro.core.errors import (
    DifferentialError,
    InvalidDeltaError,
    StaleWorkloadError,
)
from repro.datasets.fragmented import generate_fragmented
from repro.decompose import ShardedConfig, partition_workload, solve_bcc_sharded
from repro.decompose.solver import TINY_SHARD_QUERIES, effective_jobs
from repro.incremental import (
    DynamicPartition,
    IncrementalConfig,
    IncrementalSolver,
    WorkloadDelta,
    random_delta,
    resolve_delta,
)
from repro.parallel.fingerprint import instance_fingerprint, workload_fingerprint
from repro.parallel.pool import SolveTask
from repro.verify.incremental import check_delta_stream, random_delta_stream
from tests.strategies import bcc_instances, solvable_instances

# The full registry — the mutation-safety and warm==cold differentials
# below run under every backend, the matrix engine included.
from repro.core.bitset import ENGINES


def tiny_instance(budget: float = 100.0) -> BCCInstance:
    queries = [fs("ab"), fs("bc"), fs("de"), fs("fg")]
    utilities = {fs("ab"): 4.0, fs("bc"): 3.0, fs("de"): 2.0, fs("fg"): 5.0}
    costs = {fs("a"): 1.0, fs("b"): 2.0, fs("c"): 1.0, fs("d"): 3.0,
             fs("e"): 1.0, fs("f"): 2.0, fs("g"): 2.0}
    return BCCInstance(queries, utilities, costs, budget=budget)


class TestWorkloadDelta:
    def test_of_normalizes_loose_inputs(self):
        delta = WorkloadDelta.of(
            add={fs("xy"): 3.0},
            remove=[("a", "b")],
            utilities=[(fs("bc"), None)],
            costs={fs("a"): 7.0},
        )
        assert delta.add == ((fs("xy"), 3.0),)
        assert delta.remove == (fs("ab"),)
        assert delta.utilities == ((fs("bc"), None),)
        assert delta.costs == ((fs("a"), 7.0),)
        assert delta.num_edits == 4 and not delta.is_empty
        assert WorkloadDelta.of().is_empty

    def test_validate_rejects_bad_deltas(self):
        instance = tiny_instance()
        cases = [
            WorkloadDelta.of(remove=[fs("zz")]),
            WorkloadDelta.of(add=[fs("ab")]),
            WorkloadDelta.of(utilities={fs("zz"): 2.0}),
            WorkloadDelta.of(utilities={fs("ab"): -1.0}),
            WorkloadDelta.of(costs={fs("a"): -5.0}),
            WorkloadDelta.of(add={fs("xy"): math.inf}),
        ]
        for delta in cases:
            with pytest.raises(InvalidDeltaError):
                delta.validate(instance)
        with pytest.raises(InvalidDeltaError):
            WorkloadDelta.of(remove=[fs("ab"), fs("ab")])

    def test_validate_is_atomic(self):
        instance = tiny_instance()
        before = instance_fingerprint(instance)
        bad = WorkloadDelta.of(remove=[fs("ab")], utilities={fs("ab"): 9.0})
        with pytest.raises(InvalidDeltaError):
            instance.apply_delta(bad)
        assert instance_fingerprint(instance) == before
        assert instance.version == 0

    def test_remove_then_add_back_is_legal(self):
        instance = tiny_instance()
        delta = WorkloadDelta.of(remove=[fs("ab")], add={fs("ab"): 9.0})
        instance.apply_delta(delta)
        assert instance.utility(fs("ab")) == 9.0

    @given(instance=bcc_instances(max_queries=5), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_inverse_restores_fingerprint(self, instance, seed):
        rng = random.Random(seed)
        delta = random_delta(instance, rng, fraction=0.5)
        before = instance_fingerprint(instance)
        inverse = delta.inverse(instance)
        instance.apply_delta(delta)
        instance.apply_delta(inverse)
        assert instance_fingerprint(instance) == before


class TestMutationSafety:
    """Satellite regressions: no stale cache may survive a mutation."""

    def test_compiled_view_recompiles_after_mutation(self):
        instance = tiny_instance()
        with use_engine("bits"):
            old = compile_workload(instance)
            instance.add_query(fs("hi"), 2.0)
            fresh = compile_workload(instance)
            assert fresh is not old
            assert fresh.version == instance.version
            with pytest.raises(StaleWorkloadError):
                old.assert_current()
            assert fs("hi") in fresh.query_pos  # no stale compiled mask

    def test_containing_cache_refreshes_after_mutation(self):
        instance = tiny_instance()
        assert len(instance.queries_containing(fs("b"))) == 2
        instance.add_query(fs("bz"), 1.0)
        assert fs("bz") in instance.queries_containing(fs("b"))
        instance.remove_query(fs("ab"))
        assert fs("ab") not in instance.queries_containing(fs("b"))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_tracker_raises_on_stale_reads(self, engine):
        with use_engine(engine):
            instance = tiny_instance()
            tracker = CoverageTracker(instance)
            tracker.add(fs("a"))
            instance.set_cost(fs("a"), 9.0)
            for call in (
                lambda: tracker.add(fs("b")),
                lambda: tracker.remove(fs("a")),
                lambda: tracker.probe_gain([fs("b")]),
                lambda: tracker.checkpoint(),
                lambda: tracker.uncovered_contained_utility(fs("b")),
            ):
                with pytest.raises(StaleWorkloadError):
                    call()

    def test_fresh_tracker_sees_mutated_workload(self):
        for engine in ENGINES:
            with use_engine(engine):
                instance = tiny_instance()
                instance.add_query(fs("hq"), 7.0)
                tracker = CoverageTracker(instance)
                tracker.add_all([fs("h"), fs("q")])
                assert tracker.is_query_covered(fs("hq"))


class TestTrackerRoundTrips:
    """Satellite 2: remove/add round-trips restore floats bit-for-bit."""

    def _state(self, tracker):
        return (
            tracker.utility,
            tracker.spent,
            tracker.covered,
            tracker.selected,
        )

    @pytest.mark.parametrize("engine", ENGINES)
    @given(instance=solvable_instances(max_queries=6), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_add_then_remove_is_identity(self, engine, instance, seed):
        rng = random.Random(seed)
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        base = rng.sample(pool, min(len(pool), rng.randint(1, 5)))
        extra = rng.choice(pool)
        with use_engine(engine):
            tracker = CoverageTracker(instance)
            tracker.add_all(base)
            before = self._state(tracker)
            missing_before = {q: tracker.missing_properties(q) for q in instance.queries}
            tracker.add(extra)
            tracker.remove(extra)
            if extra in base:
                tracker.add(extra)  # re-adding a base member restores it
            assert self._state(tracker) == before
            assert {
                q: tracker.missing_properties(q) for q in instance.queries
            } == missing_before

    @pytest.mark.parametrize("engine", ENGINES)
    @given(instance=solvable_instances(max_queries=6), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_remove_then_readd_is_identity(self, engine, instance, seed):
        rng = random.Random(seed)
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        base = rng.sample(pool, min(len(pool), rng.randint(2, 6)))
        victim = rng.choice(base)
        with use_engine(engine):
            tracker = CoverageTracker(instance)
            tracker.add_all(base)
            # A remove leaves totals equal to a history that never added
            # the victim; re-adding appends it back.
            tracker.remove(victim)
            reference = CoverageTracker(instance)
            reference.add_all([c for c in base if c != victim])
            assert self._state(tracker) == self._state(reference)
            tracker.add(victim)
            reference.add(victim)
            assert self._state(tracker) == self._state(reference)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_infinite_cost_round_trip(self, engine):
        instance = tiny_instance()
        instance.set_cost(fs("q"), math.inf)
        instance.add_query(fs("q"), 1.0)
        with use_engine(engine):
            tracker = CoverageTracker(instance)
            tracker.add_all([fs("a"), fs("b")])
            before = (tracker.utility, tracker.spent)
            tracker.add(fs("q"))
            assert math.isinf(tracker.spent)
            tracker.remove(fs("q"))
            assert (tracker.utility, tracker.spent) == before


class TestDynamicPartition:
    def test_add_merges_and_remove_splits(self):
        instance = tiny_instance()
        part = DynamicPartition(instance)
        assert part.num_components == 3  # {ab,bc}, {de}, {fg}
        bridge = fs("cd")
        instance.add_query(bridge, 1.0)
        part.note_added(bridge)
        assert part.num_components == 2  # c--d bridges two shards
        instance.remove_query(bridge)
        part.note_removed(bridge)
        part.check()
        assert part.num_components == 3

    def test_cost_reprice_flips_usability(self):
        queries = [fs("ab"), fs("bc")]
        costs = {fs("a"): 1.0, fs("b"): math.inf, fs("c"): 1.0,
                 fs("ab"): math.inf, fs("bc"): math.inf, fs("abc"): math.inf}
        instance = BCCInstance(queries, {}, costs, budget=10.0,
                               default_cost=math.inf)
        part = DynamicPartition(instance)
        assert part.num_components == 2  # shared 'b' is unusable
        instance.set_cost(fs("b"), 1.0)
        part.note_cost(fs("b"), math.inf, 1.0)
        part.check()
        assert part.num_components == 1
        instance.set_cost(fs("b"), math.inf)
        part.note_cost(fs("b"), 1.0, math.inf)
        part.check()
        assert part.num_components == 2

    @given(instance=bcc_instances(max_queries=6), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_streams_match_cold_partition(self, instance, seed):
        rng = random.Random(seed)
        part = DynamicPartition(instance)
        for _ in range(4):
            delta = random_delta(instance, rng, fraction=0.4)
            old_costs = [(c, instance.cost(c)) for c, _ in delta.costs]
            instance.apply_delta(delta)
            for query in delta.remove:
                part.note_removed(query)
            for query, _ in delta.add:
                part.note_added(query)
            for query, _ in delta.utilities:
                part.note_utility(query)
            for (classifier, old), _ in zip(old_costs, delta.costs):
                part.note_cost(classifier, old, instance.cost(classifier))
            part.check()

    def test_materialize_matches_partition_workload(self):
        instance = generate_fragmented(
            n_components=3, queries_per_component=5, budget=100.0, seed=2
        )
        warm, dirty = DynamicPartition(instance).materialize()
        cold = partition_workload(instance)
        assert warm.shards == cold.shards
        assert dict(warm.query_to_shard) == dict(cold.query_to_shard)
        assert dirty == tuple(range(len(cold.shards)))  # initially all dirty


class TestEffectiveJobs:
    """Satellite 3: the cold fan-out regression on small shard batches."""

    def _tasks(self, num_queries: int, count: int = 4):
        queries = [frozenset({f"p{i}{j}"}) for i in range(count) for j in range(num_queries)]
        instance = BCCInstance(queries[:num_queries], {}, {}, budget=10.0)
        return [
            SolveTask(key=f"t{i}", solver="abcc", instance=instance)
            for i in range(count)
        ]

    def test_tiny_batches_run_serially(self):
        tasks = self._tasks(num_queries=TINY_SHARD_QUERIES - 1)
        assert effective_jobs(8, tasks) == 1

    def test_jobs_clamped_by_cpus_and_tasks(self):
        tasks = self._tasks(num_queries=TINY_SHARD_QUERIES + 1)
        import os

        assert effective_jobs(64, tasks) <= min(os.cpu_count() or 1, len(tasks))
        assert effective_jobs(1, tasks) == 1

    def test_sharded_meta_records_effective_jobs(self):
        instance = generate_fragmented(
            n_components=3, queries_per_component=4, budget=50.0, seed=1
        )
        solution = solve_bcc_sharded(instance, ShardedConfig(jobs=8))
        assert solution.meta["decompose"]["jobs"] == 1  # tiny shards → serial


class TestIncrementalEngine:
    CFG = IncrementalConfig(certify=True, check_partition=True)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_warm_equals_cold_nonbinding(self, engine):
        with use_engine(engine):
            instance = generate_fragmented(
                n_components=3, queries_per_component=6, budget=1e6, seed=4
            )
            solver = IncrementalSolver(instance.clone(), self.CFG)
            solver.solve()
            rng = random.Random(9)
            for _ in range(2):
                delta = random_delta(solver.instance, rng, fraction=0.1)
                warm = solver.resolve_delta(delta)
                cold = IncrementalSolver(solver.instance.clone(), self.CFG).solve()
                assert warm.classifiers == cold.classifiers
                assert warm.utility == cold.utility
                assert warm.cost == cold.cost
                assert warm.meta["incremental"]["path"] == "non-binding"
                assert "certificate" in warm.meta

    @pytest.mark.parametrize("engine", ENGINES)
    def test_warm_equals_cold_binding(self, engine):
        with use_engine(engine):
            instance = generate_fragmented(
                n_components=3, queries_per_component=5, budget=60.0, seed=6
            )
            solver = IncrementalSolver(instance.clone(), self.CFG)
            solver.solve()
            delta = random_delta(solver.instance, random.Random(2), fraction=0.15)
            warm = solver.resolve_delta(delta)
            cold = IncrementalSolver(solver.instance.clone(), self.CFG).solve()
            assert warm.classifiers == cold.classifiers
            assert (warm.utility, warm.cost) == (cold.utility, cold.cost)
            assert warm.meta["incremental"]["path"] != "non-binding"

    def test_untouched_shards_reuse_profiles(self):
        instance = generate_fragmented(
            n_components=4, queries_per_component=6, budget=1e6, seed=8
        )
        solver = IncrementalSolver(instance.clone(), self.CFG)
        solver.solve()
        # Touch exactly one query's utility: only its shard may re-solve.
        victim = solver.instance.queries[0]
        warm = solver.resolve_delta(
            WorkloadDelta.of(utilities={victim: solver.instance.utility(victim) + 1.0})
        )
        info = warm.meta["incremental"]
        assert info["dirty_shards"] == 1
        assert info["reused_profiles"] == info["shards"] - 1
        assert info["solved_tasks"] == 1

    def test_functional_resolve_delta_with_adoption(self):
        instance = generate_fragmented(
            n_components=3, queries_per_component=6, budget=1e6, seed=12
        )
        prev = IncrementalSolver(instance.clone(), self.CFG).solve()
        mutable = instance.clone()
        delta = random_delta(mutable, random.Random(4), fraction=0.08)
        warm = resolve_delta(mutable, prev, delta, config=self.CFG)
        assert warm.meta["incremental"]["adopted_shards"] > 0
        cold = IncrementalSolver(mutable.clone(), self.CFG).solve()
        assert warm.classifiers == cold.classifiers
        assert (warm.utility, warm.cost) == (cold.utility, cold.cost)

    def test_check_delta_stream_harness(self):
        instance = generate_fragmented(
            n_components=3, queries_per_component=5, budget=1e6, seed=10
        )
        deltas = random_delta_stream(instance, steps=2, rng=random.Random(5), fraction=0.1)
        report = check_delta_stream(instance.clone(), deltas, config=self.CFG)
        assert report["steps"] == 2
        assert len(report["telemetry"]) == 2

    def test_harness_catches_divergence(self):
        instance = generate_fragmented(
            n_components=3, queries_per_component=5, budget=1e6, seed=10
        )
        solver = IncrementalSolver(instance, self.CFG)
        warm = solver.solve()
        # A tampered warm solution must trip the differential check.
        from repro.verify.incremental import _check_step

        tampered = warm.__class__(
            classifiers=frozenset(list(warm.classifiers)[:-1]),
            covered=warm.covered,
            utility=warm.utility,
            cost=warm.cost,
            meta={},
        )
        with pytest.raises((DifferentialError, Exception)):
            _check_step(solver, tampered, self.CFG, None, step=0)

    def test_patch_round_trip_guard(self):
        # The tracker patch check runs on every re-plan; a healthy run
        # never raises DecompositionError.
        instance = tiny_instance(budget=1e6)
        solver = IncrementalSolver(instance, self.CFG)
        solution = solver.solve()
        assert solution.utility == instance.total_utility()

    def test_shard_fingerprints_are_budget_free(self):
        instance = tiny_instance(budget=50.0)
        assert workload_fingerprint(instance) == workload_fingerprint(
            instance.with_budget(999.0)
        )
        assert instance_fingerprint(instance) != instance_fingerprint(
            instance.with_budget(999.0)
        )
