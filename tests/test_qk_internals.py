"""White-box tests for A_H^QK internals (scaling, refill, bonuses)."""

import math
import random

import pytest

from repro.graphs import WeightedGraph
from repro.qk.heuristic import (
    QKConfig,
    _bonuses,
    _refill_side,
    _scaled_graph,
    _value,
    solve_qk,
)


def simple_graph(costs):
    g = WeightedGraph()
    for name, cost in costs.items():
        g.add_node(name, cost)
    return g


class TestScaledGraph:
    def test_uniform_costs_scale_exactly(self):
        g = simple_graph({"a": 1.0, "b": 1.0, "c": 1.0})
        g.add_edge("a", "b", 5.0)
        scaled, scaled_budget = _scaled_graph(g, 10.0, g.nodes, {}, 256)
        assert all(scaled.cost(v) == 1.0 for v in scaled.nodes)
        assert scaled_budget == 10

    def test_ceiling_preserves_feasibility(self):
        g = simple_graph({"a": 3.3, "b": 6.6})
        g.add_edge("a", "b", 1.0)
        budget = 9.9
        scaled, scaled_budget = _scaled_graph(g, budget, g.nodes, {}, 64)
        # Any scaled-feasible set must be feasible under the true costs.
        granularity = budget / scaled_budget
        for v in scaled.nodes:
            assert g.cost(v) <= scaled.cost(v) * granularity + 1e-6

    def test_copy_target_respected(self):
        g = simple_graph({i: 50.0 for i in range(100)})
        scaled, _ = _scaled_graph(g, 5000.0, g.nodes, {}, 128)
        total_copies = sum(int(scaled.cost(v)) for v in scaled.nodes)
        assert total_copies <= 2 * 128  # coarsening keeps copies bounded

    def test_bonus_node_added(self):
        g = simple_graph({"a": 2.0})
        scaled, scaled_budget = _scaled_graph(g, 4.0, g.nodes, {"a": 7.0}, 64)
        bonus_nodes = [v for v in scaled.nodes if v == ("__bonus__",)]
        assert len(bonus_nodes) == 1
        assert scaled.weight(("__bonus__",), "a") == 7.0

    def test_unaffordable_node_dropped(self):
        g = simple_graph({"a": 100.0, "b": 1.0})
        g.add_edge("a", "b", 1.0)
        scaled, _ = _scaled_graph(g, 10.0, g.nodes, {}, 64)
        assert "a" not in scaled
        assert "b" in scaled


class TestRefillSide:
    def test_mass_conserved_and_concentrated(self):
        g = simple_graph({"a": 3.0, "b": 3.0, "x": 1.0})
        g.add_edge("a", "x", 9.0)  # a has the higher per-copy degree
        g.add_edge("b", "x", 1.0)
        counts = {"a": 1, "b": 2, "x": 1}
        _refill_side(g, ["a", "b"], counts, counts)
        assert counts["a"] + counts["b"] == 3
        assert counts["a"] == 3  # refill fills the best node first

    def test_zero_mass_noop(self):
        g = simple_graph({"a": 2.0})
        counts = {}
        _refill_side(g, ["a"], counts, counts)
        assert counts.get("a", 0) == 0


class TestBonuses:
    def test_bonus_sums_edges_to_preselected(self):
        g = simple_graph({"z1": 0.0, "z2": 0.0, "v": 2.0})
        g.add_edge("z1", "v", 3.0)
        g.add_edge("z2", "v", 4.0)
        bonus = _bonuses(g, {"z1", "z2"}, ["v"])
        assert bonus == {"v": 7.0}

    def test_value_includes_bonuses(self):
        g = simple_graph({"u": 1.0, "v": 1.0})
        g.add_edge("u", "v", 5.0)
        assert _value(g, {"u": 2.0}, {"u", "v"}) == 7.0


class TestSolveQkDeterminism:
    def test_same_seed_same_result(self):
        rng = random.Random(3)
        g = WeightedGraph()
        for i in range(12):
            g.add_node(i, float(rng.randint(1, 5)))
        for i in range(12):
            for j in range(i + 1, 12):
                if rng.random() < 0.4:
                    g.add_edge(i, j, float(rng.randint(1, 9)))
        a = solve_qk(g, 12.0, QKConfig(seed=7))
        b = solve_qk(g, 12.0, QKConfig(seed=7))
        assert a == b

    def test_edge_aware_topup_starts_pairs(self):
        # Without edge-aware top-up, a fresh 2-cover would never start:
        # each single node has zero marginal gain.
        g = WeightedGraph()
        g.add_node("u", 2.0)
        g.add_node("v", 2.0)
        g.add_edge("u", "v", 10.0)
        selection = solve_qk(g, 4.0)
        assert selection == frozenset({"u", "v"})
