"""Tests for the certificate + differential verification subsystem.

Covers certificate round-trips (in-memory and through JSON), rejection of
tampered certificates and tampered solutions with the right typed errors,
the differential harness flagging a planted dishonest solver, a clean
default-arm sweep, and the metamorphic layer on the paper instance.
"""

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings

from repro.algorithms.bcc import solve_bcc
from repro.algorithms.brute_force import solve_bcc_exact
from repro.core import (
    BudgetExceededError,
    evaluate,
    from_letters as fs,
)
from repro.core.errors import (
    BudgetCertificateError,
    CertificateError,
    CostCertificateError,
    CoverageCertificateError,
    TargetCertificateError,
    UtilityCertificateError,
    WitnessCertificateError,
)
from repro.verify import (
    SolutionCertificate,
    attach_certificate,
    build_certificate,
    corpus,
    dishonest_arm,
    run_differential,
    run_metamorphic,
    self_test,
    verify_solution,
)
from tests.conftest import figure1_instance
from tests.strategies import bcc_instances, solvable_instances


@pytest.fixture
def optimal_b4(fig1_b4):
    """The certified optimum of the B=4 paper instance: {YZ, XZ}."""
    return evaluate(fig1_b4, [fs("yz"), fs("xz")])


class TestCertificateRoundTrip:
    def test_build_records_witnesses_for_covered_queries(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        assert set(cert.witnesses) == {fs("xyz"), fs("xz")}
        assert cert.total_utility == 9.0
        assert cert.total_cost == 4.0
        for query, witness in cert.witnesses.items():
            union = frozenset().union(*witness)
            assert union == query
            assert all(member <= query for member in witness)
            assert all(member in optimal_b4.classifiers for member in witness)

    def test_verify_accepts_built_certificate(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        assert (
            verify_solution(
                fig1_b4, optimal_b4, certificate=cert, budget=fig1_b4.budget
            )
            is cert
        )

    def test_json_round_trip_is_identity(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        assert SolutionCertificate.from_json(cert.to_json()) == cert

    def test_json_payload_is_pure(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        recycled = json.loads(json.dumps(cert.to_json()))
        rebuilt = SolutionCertificate.from_json(recycled)
        verify_solution(
            fig1_b4, optimal_b4, certificate=rebuilt, budget=fig1_b4.budget
        )

    def test_attach_certificate_lands_in_meta(self, fig1_b4):
        solution = solve_bcc(fig1_b4, certify=True)
        cert = solution.meta["certificate"]
        assert isinstance(cert, SolutionCertificate)
        assert cert.total_utility == solution.utility

    def test_certify_flag_on_every_bcc_entry_point(self, fig1_b4):
        for solver in (solve_bcc, solve_bcc_exact):
            assert "certificate" in solver(fig1_b4, certify=True).meta


class TestTamperedCertificateRejection:
    """Every mutated field must be caught with the right typed error."""

    def test_wrong_item_cost(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        bad = dataclasses.replace(
            cert, item_costs=tuple(c + 1.0 for c in cert.item_costs)
        )
        with pytest.raises(CostCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)

    def test_wrong_total_cost(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        bad = dataclasses.replace(cert, total_cost=cert.total_cost + 1.0)
        with pytest.raises(CostCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)

    def test_dropped_classifier(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        bad = dataclasses.replace(
            cert,
            classifiers=cert.classifiers[:-1],
            item_costs=cert.item_costs[:-1],
        )
        with pytest.raises(WitnessCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)

    def test_dropped_witness(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        witnesses = dict(cert.witnesses)
        del witnesses[fs("xyz")]
        bad = dataclasses.replace(cert, witnesses=witnesses)
        with pytest.raises(WitnessCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)

    def test_witness_union_short_of_query(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        witnesses = dict(cert.witnesses)
        witnesses[fs("xyz")] = (fs("xz"),)  # union {x, z} misses y
        bad = dataclasses.replace(cert, witnesses=witnesses)
        with pytest.raises(WitnessCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)

    def test_unselected_witness_member(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        witnesses = dict(cert.witnesses)
        witnesses[fs("xyz")] = (fs("xyz"),)  # covers, but was never selected
        bad = dataclasses.replace(cert, witnesses=witnesses)
        with pytest.raises(WitnessCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)

    def test_inflated_query_utility(self, fig1_b4, optimal_b4):
        cert = build_certificate(fig1_b4, optimal_b4)
        utilities = dict(cert.query_utilities)
        utilities[fs("xyz")] += 5.0
        bad = dataclasses.replace(cert, query_utilities=utilities)
        with pytest.raises(UtilityCertificateError):
            verify_solution(fig1_b4, optimal_b4, certificate=bad)


class TestTamperedSolutionRejection:
    def test_inflated_utility(self, fig1_b4, optimal_b4):
        bad = dataclasses.replace(optimal_b4, utility=optimal_b4.utility * 2)
        with pytest.raises(UtilityCertificateError):
            verify_solution(fig1_b4, bad)

    def test_wrong_covered_set(self, fig1_b4, optimal_b4):
        bad = dataclasses.replace(
            optimal_b4, covered=optimal_b4.covered | {fs("xy")}
        )
        with pytest.raises(CoverageCertificateError):
            verify_solution(fig1_b4, bad)

    def test_understated_cost(self, fig1_b4, optimal_b4):
        bad = dataclasses.replace(optimal_b4, cost=optimal_b4.cost - 1.0)
        with pytest.raises(CostCertificateError):
            verify_solution(fig1_b4, bad)

    def test_over_budget(self, fig1_b3):
        # {X} costs 5 against budget 3: honest bookkeeping, infeasible.
        solution = evaluate(fig1_b3, [fs("x")])
        with pytest.raises(BudgetCertificateError):
            verify_solution(fig1_b3, solution, budget=fig1_b3.budget)

    def test_budget_error_is_budget_exceeded(self, fig1_b3):
        # The certificate budget error satisfies the legacy hierarchy too.
        solution = evaluate(fig1_b3, [fs("x")])
        with pytest.raises(BudgetExceededError):
            verify_solution(fig1_b3, solution, budget=fig1_b3.budget)

    def test_infinite_cost_member_rejected_under_budget_check(self, fig1_b4):
        solution = evaluate(fig1_b4, [fs("xy")])
        assert math.isinf(solution.cost)
        with pytest.raises(CostCertificateError):
            verify_solution(fig1_b4, solution, budget=fig1_b4.budget)

    def test_target_shortfall(self, fig1_b4, optimal_b4):
        with pytest.raises(TargetCertificateError):
            verify_solution(fig1_b4, optimal_b4, target=optimal_b4.utility + 1.0)

    def test_attach_certificate_refuses_tampering(self, fig1_b4, optimal_b4):
        bad = dataclasses.replace(optimal_b4, utility=optimal_b4.utility + 1.0)
        with pytest.raises(CertificateError):
            attach_certificate(fig1_b4, bad)


class TestDifferentialHarness:
    def test_dishonest_solver_is_flagged_on_every_case(self):
        cases = corpus(seeds=range(1))
        report = run_differential(
            cases, arms=[dishonest_arm()], objectives=("bcc",)
        )
        assert not report.ok
        flagged = {f.case for f in report.findings if f.check == "certificate"}
        assert flagged == {case.name for case in cases}
        assert all(f.arm == "dishonest" for f in report.findings)

    def test_self_test_passes(self):
        report = self_test()
        assert report.findings  # the planted bug produced findings

    def test_raise_on_failure(self):
        from repro.core.errors import DifferentialError

        report = run_differential(
            corpus(seeds=range(1))[:1], arms=[dishonest_arm()], objectives=("bcc",)
        )
        with pytest.raises(DifferentialError):
            report.raise_on_failure()

    def test_default_arms_certify_cleanly(self):
        report = run_differential(corpus(seeds=range(1)))
        assert report.ok, "\n".join(str(f) for f in report.findings)
        assert report.solutions_certified > 0
        assert report.checks_run > 0


class TestMetamorphic:
    def test_paper_instance_passes_all_relations(self):
        ran = run_metamorphic(figure1_instance(4.0))
        assert ran == [
            "budget-monotonicity",
            "utility-rescaling",
            "property-renaming",
            "duplicate-merge",
        ]


class TestPropertyBasedCertification:
    @given(instance=solvable_instances(max_queries=4, max_length=2))
    @settings(max_examples=40, deadline=None)
    def test_exact_solver_certifies_and_round_trips(self, instance):
        solution = solve_bcc_exact(instance, certify=True)
        cert = solution.meta["certificate"]
        recycled = SolutionCertificate.from_json(
            json.loads(json.dumps(cert.to_json()))
        )
        verify_solution(
            instance, solution, certificate=recycled, budget=instance.budget
        )

    @given(instance=bcc_instances())
    @settings(max_examples=40, deadline=None)
    def test_heuristic_certifies_on_adversarial_instances(self, instance):
        # Zero costs, infinite costs and tight budgets included: the
        # heuristic must stay feasible and its bookkeeping certifiable.
        solution = solve_bcc(instance, certify=True)
        assert "certificate" in solution.meta
