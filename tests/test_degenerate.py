"""Degenerate-instance sweep: the shapes that crash naive solvers.

Every solver entry point is driven through the same catalogue of edge
instances — empty workloads, zero budgets, single-query shards,
all-infinite cost models, duplicate queries — and must either return a
well-formed feasible solution or raise the typed
:class:`~repro.core.errors.InvalidInstanceError` at construction.  The
sweep is parameterised so a new solver only needs one line here.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.bcc import solve_bcc
from repro.algorithms.ecc import solve_ecc
from repro.algorithms.gmc3 import solve_gmc3
from repro.core import BCCInstance, ECCInstance, GMC3Instance, from_letters as fs
from repro.core.bitset import ENGINES, use_engine
from repro.core.errors import InfeasibleTargetError, InvalidInstanceError
from repro.decompose import ShardedConfig, solve_bcc_sharded

_TOL = 1e-9


def _sharded(instance):
    return solve_bcc_sharded(instance, ShardedConfig(jobs=1), seed=0)


BCC_SOLVERS = [
    pytest.param(solve_bcc, id="abcc"),
    pytest.param(_sharded, id="abcc-sharded"),
]


def _queries():
    return [fs("ab"), fs("c"), fs("de")]


def _utilities():
    return {fs("ab"): 4.0, fs("c"): 2.0, fs("de"): 3.0}


def _costs(value: float = 1.0):
    return {
        fs(letter): value for letter in "abcde"
    } | {fs("ab"): value, fs("de"): value}


# ----------------------------------------------------------------------
# invalid at construction: solvers never even see these
# ----------------------------------------------------------------------
def test_empty_workload_is_rejected_at_construction():
    with pytest.raises(InvalidInstanceError):
        BCCInstance([], {}, {}, budget=1.0)
    with pytest.raises(InvalidInstanceError):
        GMC3Instance([], {}, {}, target=1.0)
    with pytest.raises(InvalidInstanceError):
        ECCInstance([], {}, {})


def test_duplicate_queries_are_rejected_at_construction():
    queries = [fs("ab"), fs("ab")]
    with pytest.raises(InvalidInstanceError):
        BCCInstance(queries, {fs("ab"): 1.0}, {}, budget=1.0)
    with pytest.raises(InvalidInstanceError):
        GMC3Instance(queries, {fs("ab"): 1.0}, {}, target=1.0)
    with pytest.raises(InvalidInstanceError):
        ECCInstance(queries, {fs("ab"): 1.0}, {})


# ----------------------------------------------------------------------
# valid but degenerate: solvers must cope
# ----------------------------------------------------------------------
@pytest.mark.parametrize("solver", BCC_SOLVERS)
def test_zero_budget_yields_free_coverage_only(solver):
    costs = _costs(1.0) | {fs("c"): 0.0}
    instance = BCCInstance(_queries(), _utilities(), costs, budget=0.0)
    solution = solver(instance)
    assert solution.cost == 0.0
    assert solution.utility == pytest.approx(2.0)  # the free singleton 'c'


@pytest.mark.parametrize("solver", BCC_SOLVERS)
def test_single_query_instance(solver):
    instance = BCCInstance(
        [fs("ab")], {fs("ab"): 5.0}, _costs(1.0), budget=10.0
    )
    solution = solver(instance)
    assert solution.utility == pytest.approx(5.0)
    assert solution.cost <= instance.budget + _TOL


@pytest.mark.parametrize("solver", BCC_SOLVERS)
def test_all_singleton_queries_decompose_fully(solver):
    queries = [fs(letter) for letter in "abcde"]
    utilities = {q: 1.0 for q in queries}
    costs = {q: 1.0 for q in queries}
    instance = BCCInstance(queries, utilities, costs, budget=3.0)
    solution = solver(instance)
    assert solution.utility == pytest.approx(3.0)
    assert solution.cost <= 3.0 + _TOL


@pytest.mark.parametrize("solver", BCC_SOLVERS)
def test_all_infinite_costs_yield_the_empty_solution(solver):
    costs = {c: math.inf for c in _costs()}
    instance = BCCInstance(
        _queries(), _utilities(), costs, budget=100.0, default_cost=math.inf
    )
    solution = solver(instance)
    assert solution.utility == 0.0
    assert solution.cost == 0.0
    assert solution.classifiers == frozenset()


def test_gmc3_degenerate_targets():
    # Target 0 is reachable by the empty selection; a target beyond the
    # coverable utility must raise the typed error, not leak an MC3 crash.
    instance_zero = GMC3Instance(_queries(), _utilities(), _costs(), target=0.0)
    solution = solve_gmc3(instance_zero)
    assert solution.utility >= 0.0

    costs = {c: math.inf for c in _costs()}
    unreachable = GMC3Instance(
        _queries(), _utilities(), costs, target=5.0, default_cost=math.inf
    )
    with pytest.raises(InfeasibleTargetError):
        solve_gmc3(unreachable)


def test_gmc3_reaches_target_despite_uncoverable_query():
    # Regression: one query walled off by infinite costs used to crash the
    # budget search (full-cover MC3) even though the target was reachable
    # through the other queries.
    costs = _costs(1.0) | {
        fs("a"): math.inf,
        fs("b"): math.inf,
        fs("ab"): math.inf,
    }
    instance = GMC3Instance(
        _queries(), _utilities(), costs, target=2.0, default_cost=math.inf
    )
    solution = solve_gmc3(instance)
    assert solution.utility >= 2.0 - _TOL


def test_ecc_degenerate_costs():
    solution = solve_ecc(ECCInstance(_queries(), _utilities(), _costs()))
    assert solution.utility >= 0.0

    costs = {c: math.inf for c in _costs()}
    all_infinite = ECCInstance(
        _queries(), _utilities(), costs, default_cost=math.inf
    )
    solution = solve_ecc(all_infinite)
    assert solution.classifiers == frozenset()


def test_ecc_single_query():
    instance = ECCInstance([fs("ab")], {fs("ab"): 5.0}, _costs(1.0))
    solution = solve_ecc(instance)
    assert solution.utility >= 0.0


# ----------------------------------------------------------------------
# engine sweep: the degenerate shapes under every coverage backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("solver", BCC_SOLVERS)
def test_degenerate_shapes_engine_identical(solver, engine):
    """Every backend — the matrix engine included — must survive the
    degenerate catalogue and return the exact solution the ``sets``
    reference does (zero budget, all-infinite costs, single query)."""
    catalogue = [
        BCCInstance(_queries(), _utilities(), _costs(1.0) | {fs("c"): 0.0}, budget=0.0),
        BCCInstance([fs("ab")], {fs("ab"): 5.0}, _costs(1.0), budget=10.0),
        BCCInstance(
            _queries(),
            _utilities(),
            {c: math.inf for c in _costs()},
            budget=100.0,
            default_cost=math.inf,
        ),
    ]
    for instance in catalogue:
        with use_engine("sets"):
            reference = solver(instance)
        with use_engine(engine):
            solution = solver(instance)
        assert solution.classifiers == reference.classifiers
        assert solution.utility == reference.utility
        assert solution.cost == reference.cost


# ----------------------------------------------------------------------
# the anytime SLO meta-solver against the degenerate catalogue
# ----------------------------------------------------------------------
def _slo_solver():
    from repro.parallel.clock import VirtualClock
    from repro.slo import AnytimeMetaSolver, ArmStatsStore, SloConfig

    stats = ArmStatsStore(path=None)
    clock = VirtualClock(
        task_seconds=lambda task, s=stats: s.predict_runtime(
            task.solver, (0.0,) * 7, "virtual"
        )
    )
    return AnytimeMetaSolver(SloConfig(stats=stats, clock=clock, record=False))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("deadline_ms", [0.0, 50.0, None])
def test_slo_single_uncoverable_query_returns_certified_empty(engine, deadline_ms):
    # The only query is walled off by infinite costs: at every deadline —
    # 0ms included — the incumbent is the certified empty solution.
    instance = BCCInstance(
        [fs("ab")],
        {fs("ab"): 5.0},
        {c: math.inf for c in _costs()},
        budget=100.0,
        default_cost=math.inf,
    )
    with use_engine(engine):
        solver = _slo_solver()
        solution = solver.solve(instance, deadline_ms=deadline_ms)
    assert solution.classifiers == frozenset()
    assert solution.utility == 0.0
    assert "certificate" in solution.meta
    assert len(solution.meta["slo"]["schedule"]) >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_slo_all_infinite_costs_yield_certified_empty_incumbent(engine):
    from repro.verify import check_incumbent_trace

    instance = BCCInstance(
        _queries(),
        _utilities(),
        {c: math.inf for c in _costs()},
        budget=100.0,
        default_cost=math.inf,
    )
    with use_engine(engine):
        solver = _slo_solver()
        solution = solver.solve(instance, deadline_ms=None)
        check_incumbent_trace(instance, solver.last_trace)
    assert solution.classifiers == frozenset()
    assert solution.cost == 0.0


@pytest.mark.parametrize("engine", ENGINES)
def test_slo_zero_budget_takes_free_coverage_only(engine):
    costs = _costs(1.0) | {fs("c"): 0.0}
    instance = BCCInstance(_queries(), _utilities(), costs, budget=0.0)
    with use_engine(engine):
        solution = _slo_solver().solve(instance, deadline_ms=None)
    assert solution.cost == 0.0
    assert solution.utility == pytest.approx(2.0)
    assert "certificate" in solution.meta


def test_slo_empty_workload_is_rejected_at_construction():
    # The catalogue's empty-workload row: there is no instance to solve,
    # so the meta-solver can never even be reached.
    with pytest.raises(InvalidInstanceError):
        BCCInstance([], {}, {}, budget=1.0)


def test_sharded_zero_budget_many_shards_meta():
    queries = [fs(letter) for letter in "abc"]
    instance = BCCInstance(
        queries, {q: 1.0 for q in queries}, {q: 1.0 for q in queries}, budget=0.0
    )
    solution = _sharded(instance)
    assert solution.utility == 0.0
    assert solution.meta["decompose"]["shards"] == 3
