"""End-to-end integration tests: full solver pipelines on tiny datasets.

These assert the paper's qualitative claims at fixed seeds — the same
shapes the benchmark suite checks at larger scale.
"""

import pytest

from repro.algorithms import solve_bcc, solve_ecc, solve_gmc3
from repro.baselines import (
    ig1_bcc,
    ig1_ecc,
    ig1_gmc3,
    ig2_bcc,
    ig2_ecc,
    ig2_gmc3,
    rand_bcc,
    rand_ecc,
    rand_gmc3,
)
from repro.core import ECCInstance, GMC3Instance, check_budget
from repro.datasets import generate_bestbuy, generate_private, generate_synthetic
from repro.mc3 import full_cover_cost


@pytest.fixture(scope="module")
def bb():
    return generate_bestbuy(n_queries=120, n_properties=150, seed=1)


@pytest.fixture(scope="module")
def private():
    return generate_private(n_queries=150, n_properties=240, seed=1)


@pytest.fixture(scope="module")
def synthetic():
    return generate_synthetic(n_queries=200, n_properties=140, seed=1)


def _to_gmc3(base, target):
    return GMC3Instance(
        base.queries,
        {q: base.utility(q) for q in base.queries},
        base._costs,
        target=target,
        default_cost=base.default_cost,
    )


def _to_ecc(base):
    return ECCInstance(
        base.queries,
        {q: base.utility(q) for q in base.queries},
        base._costs,
        default_cost=base.default_cost,
    )


class TestBccPipeline:
    @pytest.mark.parametrize("dataset", ["bb", "private", "synthetic"])
    @pytest.mark.parametrize("fraction", [0.15, 0.4])
    def test_abcc_beats_baselines(self, dataset, fraction, request):
        base = request.getfixturevalue(dataset)
        budget = max(1.0, round(full_cover_cost(base) * fraction))
        instance = base.with_budget(budget)
        ours = solve_bcc(instance)
        check_budget(instance, ours)
        rand = rand_bcc(instance, seed=0)
        ig1 = ig1_bcc(instance)
        ig2 = ig2_bcc(instance)
        best_baseline = max(rand.utility, ig1.utility, ig2.utility)
        # A^BCC leads (tiny instances allow a 3% heuristic slack).
        assert ours.utility >= 0.97 * best_baseline
        assert ours.utility > rand.utility

    def test_utility_monotone_in_budget(self, private):
        full = full_cover_cost(private)
        utilities = []
        for fraction in (0.1, 0.3, 0.6):
            solution = solve_bcc(private.with_budget(round(full * fraction)))
            utilities.append(solution.utility)
        assert utilities == sorted(utilities)


class TestGmc3Pipeline:
    @pytest.mark.parametrize("dataset", ["bb", "private"])
    def test_agmc3_cheapest(self, dataset, request):
        base = request.getfixturevalue(dataset)
        target = round(base.total_utility() * 0.5)
        instance = _to_gmc3(base, target)
        ours = solve_gmc3(instance)
        assert ours.utility >= target - 1e-6
        for baseline in (lambda i: rand_gmc3(i, seed=0), ig1_gmc3, ig2_gmc3):
            other = baseline(instance)
            if other.meta.get("reached_target"):
                assert ours.cost <= other.cost * 1.03


class TestEccPipeline:
    @pytest.mark.parametrize("dataset", ["bb", "private", "synthetic"])
    def test_aecc_best_ratio(self, dataset, request):
        base = request.getfixturevalue(dataset)
        instance = _to_ecc(base)
        ours = solve_ecc(instance)
        assert ours.ratio > 0
        for baseline in (lambda i: rand_ecc(i, seed=0), ig1_ecc, ig2_ecc):
            other = baseline(instance)
            assert ours.ratio >= other.ratio * 0.97
