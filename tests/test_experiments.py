"""Tests for the experiment harness (runner, report, scales, insights, CLI)."""

import pytest

from repro.experiments.runner import FigureResult, budget_sweep, timed
from repro.experiments.report import render_table, render_timings
from repro.experiments.scales import PAPER, SCALES, SMALL, TINY


class TestFigureResult:
    def make(self):
        result = FigureResult("figX", "test", "budget", "utility")
        result.add(10, "A", 1.0, 0.1)
        result.add(10, "B", 2.0, 0.2)
        result.add(20, "A", 3.0, 0.3)
        result.add(20, "B", 4.0, 0.4)
        return result

    def test_series(self):
        result = self.make()
        assert result.series("A") == [(10, 1.0), (20, 3.0)]

    def test_algorithms_ordered(self):
        assert self.make().algorithms() == ["A", "B"]

    def test_x_values_ordered(self):
        assert self.make().x_values() == [10, 20]

    def test_value_at(self):
        result = self.make()
        assert result.value_at(20, "B") == 4.0
        assert result.value_at(30, "B") is None

    def test_extra_recorded(self):
        result = FigureResult("f", "t", "x", "v")
        result.add(1, "A", 1.0, 0.0, detail="yes")
        assert result.rows[0].extra["detail"] == "yes"


class TestHelpers:
    def test_timed(self):
        value, seconds = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0.0

    def test_budget_sweep(self):
        assert budget_sweep(100.0, (0.1, 0.5)) == [10.0, 50.0]

    def test_budget_sweep_floor(self):
        assert budget_sweep(4.0, (0.01,)) == [1.0]


class TestReport:
    def test_render_table_contains_values(self):
        result = FigureResult("fig9", "demo", "budget", "utility")
        result.add(10, "A^BCC", 12.345, 0.1)
        result.notes.append("hello")
        text = render_table(result)
        assert "fig9" in text
        assert "12.3" in text
        assert "note: hello" in text

    def test_render_table_missing_cell(self):
        result = FigureResult("f", "t", "x", "v")
        result.add(1, "A", 1.0, 0.0)
        result.add(2, "B", 2.0, 0.0)
        text = render_table(result)
        assert "-" in text

    def test_render_timings(self):
        result = FigureResult("f", "t", "x", "v")
        result.add(1, "A", 1.0, 0.25)
        text = render_timings(result)
        assert "0.25s" in text


class TestScales:
    def test_registry(self):
        assert SCALES["tiny"] is TINY
        assert SCALES["small"] is SMALL
        assert SCALES["paper"] is PAPER

    def test_paper_matches_paper_sizes(self):
        assert PAPER.bb_queries == 1000
        assert PAPER.bb_properties == 725
        assert PAPER.p_queries == 5000
        assert PAPER.p_properties == 2000

    def test_sweeps_increasing(self):
        for scale in SCALES.values():
            assert list(scale.sweep_sizes) == sorted(scale.sweep_sizes)


class TestInsights:
    def test_diminishing_returns_detector(self):
        from repro.experiments.insights import diminishing_returns

        concave = [(0.25, 0.5), (0.5, 0.75), (0.75, 0.9), (1.0, 1.0)]
        assert diminishing_returns(concave)
        convex = [(0.25, 0.1), (0.5, 0.3), (0.75, 0.6), (1.0, 1.0)]
        assert not diminishing_returns(convex)

    def test_utility_curve_monotone(self):
        from repro.datasets import generate_bestbuy
        from repro.experiments.insights import utility_curve

        base = generate_bestbuy(n_queries=60, n_properties=70, seed=2)
        curve = utility_curve(base, fractions=(0.3, 1.0))
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert values[-1] <= 1.0 + 1e-9

    def test_coverage_split_sums_to_one(self):
        from repro.datasets import generate_bestbuy
        from repro.experiments.insights import coverage_split_by_length

        base = generate_bestbuy(n_queries=50, n_properties=60, seed=4)
        split = coverage_split_by_length(base, budget=15.0)
        if split:
            assert sum(split.values()) == pytest.approx(1.0)


class TestCli:
    def test_unknown_figure_rejected(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_runs_tiny_figure(self, capsys):
        from repro.experiments.cli import main

        code = main(["fig4e", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig4e" in out
        assert "A^ECC" in out


class TestRenderBars:
    def test_bars_render(self):
        from repro.experiments.report import render_bars

        result = FigureResult("figZ", "bars", "x", "v")
        result.add(1, "A", 10.0, 0.0)
        result.add(1, "B", 5.0, 0.0)
        text = render_bars(result, width=10)
        assert "figZ" in text
        assert "##########" in text  # the peak bar
        assert "10.0" in text and "5.0" in text

    def test_bars_handle_infinity(self):
        from repro.experiments.report import render_bars

        result = FigureResult("figZ", "bars", "x", "v")
        result.add(1, "A", float("inf"), 0.0)
        result.add(1, "B", 2.0, 0.0)
        text = render_bars(result)
        assert "inf" in text

    def test_bars_empty(self):
        from repro.experiments.report import render_bars

        result = FigureResult("figZ", "bars", "x", "v")
        assert "no finite values" in render_bars(result)
