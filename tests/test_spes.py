"""Tests for the SpES heuristic (smallest p-edge subgraph)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dks import solve_spes
from repro.graphs import WeightedGraph


def clique(n, weight=1.0):
    g = WeightedGraph()
    for i in range(n):
        g.add_node(i, 1.0)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, weight)
    return g


def exact_spes(graph, p):
    nodes = sorted(graph.nodes, key=repr)
    for r in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, r):
            if graph.induced_weight(combo) >= p - 1e-12:
                return r
    return None


class TestSolveSpes:
    def test_trivial_target(self):
        assert solve_spes(clique(4), 0.0) == frozenset()

    def test_single_edge_suffices(self):
        g = clique(5)
        selection = solve_spes(g, 1.0)
        assert selection is not None
        assert len(selection) == 2
        assert g.induced_weight(selection) >= 1.0

    def test_infeasible_returns_none(self):
        g = clique(3)  # 3 edges total
        assert solve_spes(g, 10.0) is None

    def test_reaches_target(self):
        g = clique(6)
        selection = solve_spes(g, 6.0)
        assert selection is not None
        assert g.induced_weight(selection) >= 6.0

    def test_clique_optimal_size(self):
        # p = C(k, 2) needs exactly k clique nodes.
        g = clique(8)
        selection = solve_spes(g, 10.0)  # C(5,2) = 10
        assert selection is not None
        assert len(selection) == 5

    def test_prefers_dense_region(self):
        g = clique(4, weight=2.0)  # 12 weight in 4 nodes
        for i in range(10, 20):
            g.add_node(i, 1.0)
        for i in range(10, 19):
            g.add_edge(i, i + 1, 1.0)  # sparse path
        selection = solve_spes(g, 8.0)
        assert selection is not None
        assert selection <= {0, 1, 2, 3}

    @given(seed=st.integers(0, 500), p=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_greedy_close_to_exact(self, seed, p):
        rng = random.Random(seed)
        g = WeightedGraph()
        for i in range(8):
            g.add_node(i, 1.0)
        for i in range(8):
            for j in range(i + 1, 8):
                if rng.random() < 0.5:
                    g.add_edge(i, j, 1.0)
        selection = solve_spes(g, float(p))
        optimal = exact_spes(g, float(p))
        if optimal is None:
            assert selection is None
        else:
            assert selection is not None
            assert g.induced_weight(selection) >= p - 1e-12
            # Greedy within 2x the optimal node count on these sizes.
            assert len(selection) <= 2 * optimal
