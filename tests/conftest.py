"""Shared fixtures: the paper's running examples and small random instances.

Setting ``REPRO_TEST_ORDER_SEED`` shuffles test collection order with that
seed — the flake-audit CI leg runs the suite under two different seeds to
flush out order-dependent tests (shared module state, leaked engine
switches, cache spill).  Unset, collection order is untouched.
"""

from __future__ import annotations

import math
import os
import random

import pytest

from repro.core import BCCInstance, from_letters as fs


def pytest_collection_modifyitems(config, items):
    seed = os.environ.get("REPRO_TEST_ORDER_SEED")
    if not seed:
        return
    random.Random(int(seed)).shuffle(items)


def figure1_instance(budget: float) -> BCCInstance:
    """The Figure 1 instance of the paper (Example 2.1).

    Queries xyz/xz/xy with utilities 8/1/2; costs C(X)=5,
    C(Y)=C(Z)=C(XYZ)=3, C(XZ)=4, C(YZ)=0, C(XY)=inf.
    Optimal utilities: B=3 -> 8, B=4 -> 9, B=11 -> 11.
    """
    queries = [fs("xyz"), fs("xz"), fs("xy")]
    utilities = {fs("xyz"): 8.0, fs("xz"): 1.0, fs("xy"): 2.0}
    costs = {
        fs("x"): 5.0,
        fs("y"): 3.0,
        fs("z"): 3.0,
        fs("xyz"): 3.0,
        fs("xz"): 4.0,
        fs("yz"): 0.0,
        fs("xy"): math.inf,
    }
    return BCCInstance(queries, utilities, costs, budget=budget)


@pytest.fixture
def fig1_b3() -> BCCInstance:
    return figure1_instance(3.0)


@pytest.fixture
def fig1_b4() -> BCCInstance:
    return figure1_instance(4.0)


@pytest.fixture
def fig1_b11() -> BCCInstance:
    return figure1_instance(11.0)


def random_instance(
    seed: int,
    n_properties: int = 8,
    n_queries: int = 10,
    max_length: int = 3,
    budget_fraction: float = 0.4,
    max_cost: float = 9.0,
) -> BCCInstance:
    """Small random BCC instance for oracle comparisons."""
    rng = random.Random(seed)
    properties = [f"p{i}" for i in range(n_properties)]
    queries = set()
    while len(queries) < n_queries:
        length = rng.randint(1, max_length)
        queries.add(frozenset(rng.sample(properties, length)))
    queries = sorted(queries, key=sorted)
    utilities = {q: float(rng.randint(1, 10)) for q in queries}
    costs = {}
    classifiers = set()
    for q in queries:
        from repro.core import powerset_classifiers

        classifiers.update(powerset_classifiers(q))
    for c in classifiers:
        costs[c] = float(rng.randint(0, int(max_cost)))
    total = sum(costs.values())
    budget = max(1.0, round(total * budget_fraction))
    return BCCInstance(queries, utilities, costs, budget=budget)
