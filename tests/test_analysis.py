"""Numerical verification of the paper's bound algebra (repro.analysis)."""

import math

import pytest

from repro.analysis import (
    bcc_decomposition_bound,
    bcc_l2_ratio,
    gmc3_iteration_bound,
    qk_heuristic_ratio,
    subproblem_fraction_bound,
    taylor_class_ratio,
    taylor_worst_case,
)


class TestQkHeuristicRatio:
    def test_theorem_4_7_value(self):
        # 2 (bipartition) x 2 (half budget) x alpha x 5/4 (final step).
        assert qk_heuristic_ratio(1.0) == pytest.approx(5.0)
        assert qk_heuristic_ratio(1.5, epsilon=0.1) == pytest.approx(7.6)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            qk_heuristic_ratio(0.5)


class TestDecomposition:
    def test_worst_beta_formula(self):
        # Paper: beta = 2 / (2 + 5 alpha) for the (2, 5 alpha) split.
        beta, ratio = bcc_decomposition_bound(2.0, 5.0)
        assert beta == pytest.approx(2.0 / 7.0)
        assert ratio == pytest.approx(7.0)

    def test_worst_beta_is_actually_worst(self):
        """At the paper's beta both arms guarantee the same fraction, and
        any other beta makes at least one arm better."""
        k, q = 2.0, 5.0
        beta_star, ratio = bcc_decomposition_bound(k, q)

        def guaranteed(beta):
            return max(beta / k, (1 - beta) / q)

        floor = guaranteed(beta_star)
        assert floor == pytest.approx(1.0 / ratio)
        for beta in (0.1, 0.2, 0.5, 0.8, 0.9):
            assert guaranteed(beta) >= floor - 1e-12

    def test_bcc_l2_ratio_dominates_decomposition(self):
        for alpha in (1.0, 1.2, 2.0, 5.0):
            _, exact = bcc_decomposition_bound(2.0, 5.0 * alpha)
            assert bcc_l2_ratio(alpha) >= exact


class TestSubproblemFraction:
    def test_observation_4_2(self):
        assert subproblem_fraction_bound(2) == 0.5
        assert subproblem_fraction_bound(5) == pytest.approx(0.2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            subproblem_fraction_bound(0)


class TestTaylorAnalysis:
    def test_class_ratio_components(self):
        n = 10_000.0
        assert taylor_class_ratio(n, budget=n, w=1.0) == pytest.approx(1.0)

    def test_lemma_4_6_worst_case_location(self):
        """The numeric maximum sits at B ~ n^{2/3}, w ~ n^{1/3} with value
        ~ n^{1/3} (Lemma 4.6's 'simple analysis')."""
        n = 10.0**6
        worst, budget, w = taylor_worst_case(n, grid=90)
        assert worst == pytest.approx(n ** (1.0 / 3.0), rel=0.15)
        assert math.log(budget, n) == pytest.approx(2.0 / 3.0, abs=0.05)
        assert math.log(w, n) == pytest.approx(1.0 / 3.0, abs=0.05)

    def test_all_three_subexpressions_equal_at_optimum(self):
        n = 10.0**6
        budget, w = n ** (2.0 / 3.0), n ** (1.0 / 3.0)
        assert n / budget == pytest.approx((n * w) ** 0.25, rel=1e-9)
        assert n / budget == pytest.approx(budget / w, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            taylor_class_ratio(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            taylor_worst_case(1.0)


class TestGmc3Iterations:
    def test_logarithmic(self):
        assert gmc3_iteration_bound(2.0, math.e**3) == pytest.approx(6.0)

    def test_trivial_target(self):
        assert gmc3_iteration_bound(3.0, 1.0) == 0.0

    def test_geometric_decay_reaches_target(self):
        """Simulate Theorem 5.3's recursion: t_{j+1} <= t_j (1 - 1/alpha);
        after alpha ln T rounds the residual is below 1."""
        alpha, target = 3.0, 500.0
        rounds = math.ceil(gmc3_iteration_bound(alpha, target))
        residual = target
        for _ in range(rounds):
            residual *= 1.0 - 1.0 / alpha
        assert residual < 1.0
