"""White-box tests for the densest-subgraph substrate internals."""

import math

import pytest

from repro.densest.exact_flow import _best_for_ratio, _free_positive_subgraph
from repro.graphs import WeightedGraph


def small_graph():
    g = WeightedGraph()
    g.add_node("a", 1.0)
    g.add_node("b", 1.0)
    g.add_node("c", 3.0)
    g.add_edge("a", "b", 4.0)
    g.add_edge("b", "c", 1.0)
    return g


class TestBestForRatio:
    def test_low_lambda_selects_everything_profitable(self):
        profit, selection = _best_for_ratio(small_graph(), lam=0.1)
        assert profit > 0
        assert {"a", "b"} <= selection

    def test_high_lambda_selects_nothing(self):
        profit, selection = _best_for_ratio(small_graph(), lam=100.0)
        assert profit == pytest.approx(0.0, abs=1e-6)
        assert selection == set()

    def test_crossover_drops_weak_node(self):
        # At lambda = 1.5: edge a-b profit 4 - 3 = 1 > 0; adding c costs
        # 4.5 for weight 1 -> excluded.
        profit, selection = _best_for_ratio(small_graph(), lam=1.5)
        assert selection == {"a", "b"}


class TestFreePositiveSubgraph:
    def test_detects_free_weight(self):
        g = WeightedGraph()
        g.add_node("a", 0.0)
        g.add_node("b", 0.0)
        g.add_edge("a", "b", 1.0)
        assert _free_positive_subgraph(g) == frozenset({"a", "b"})

    def test_no_free_weight(self):
        assert _free_positive_subgraph(small_graph()) == frozenset()

    def test_isolated_free_nodes_dont_count(self):
        g = WeightedGraph()
        g.add_node("a", 0.0)
        g.add_node("b", 1.0)
        g.add_edge("a", "b", 1.0)
        assert _free_positive_subgraph(g) == frozenset()


class TestSolutionDescribe:
    def test_describe_contains_summary(self, fig1_b4):
        from repro.core import evaluate, from_letters as fs

        solution = evaluate(fig1_b4, [fs("yz"), fs("xz")])
        text = solution.describe()
        assert "cost: 4" in text
        assert "XZ" in text
        assert "YZ" in text

    def test_describe_truncates(self, fig1_b11):
        from repro.core import evaluate, from_letters as fs

        solution = evaluate(fig1_b11, [fs("x"), fs("y"), fs("z"), fs("yz")])
        text = solution.describe(max_items=2)
        assert "... and 2 more" in text
