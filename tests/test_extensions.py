"""Tests for the future-work extensions (partial covers, shared costs)."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BCCInstance, InvalidInstanceError, from_letters as fs
from repro.extensions import (
    PartialCoverModel,
    SharedCostModel,
    linear_credit,
    quadratic_credit,
    solve_partial_bcc,
    solve_shared_cost_bcc,
    step_credit,
    threshold_credit,
)


class TestCreditFunctions:
    def test_step(self):
        assert step_credit(1.0) == 1.0
        assert step_credit(0.99) == 0.0
        assert step_credit(0.0) == 0.0

    def test_linear(self):
        assert linear_credit(0.5) == 0.5
        assert linear_credit(1.5) == 1.0
        assert linear_credit(-1.0) == 0.0

    def test_quadratic(self):
        assert quadratic_credit(0.5) == 0.25
        assert quadratic_credit(1.0) == 1.0

    def test_threshold(self):
        credit = threshold_credit(0.5)
        assert credit(0.4) == 0.0
        assert credit(0.75) == pytest.approx(0.5)
        assert credit(1.0) == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            threshold_credit(1.5)

    def test_bad_credit_rejected(self):
        with pytest.raises(InvalidInstanceError):
            PartialCoverModel(
                BCCInstance([fs("x")], budget=1.0), credit=lambda f: 0.5
            )


class TestPartialCoverModel:
    def instance(self):
        return BCCInstance(
            [fs("xy"), fs("z")],
            {fs("xy"): 8.0, fs("z"): 2.0},
            {fs("x"): 2.0, fs("y"): 2.0, fs("xy"): 3.0, fs("z"): 1.0},
            budget=3.0,
        )

    def test_step_matches_base_model(self):
        model = PartialCoverModel(self.instance(), step_credit)
        assert model.utility_of([fs("xy")]) == 8.0
        assert model.utility_of([fs("x")]) == 0.0

    def test_linear_pays_partial(self):
        model = PartialCoverModel(self.instance(), linear_credit)
        assert model.utility_of([fs("x")]) == pytest.approx(4.0)

    def test_covered_fraction(self):
        model = PartialCoverModel(self.instance())
        assert model.covered_fraction(fs("xy"), [fs("x")]) == 0.5
        # Non-subset classifiers never contribute.
        assert model.covered_fraction(fs("xy"), [fs("xz")]) == 0.0

    def test_cost_of_deduplicates(self):
        model = PartialCoverModel(self.instance())
        assert model.cost_of([fs("x"), fs("x")]) == 2.0


class TestSolvePartial:
    def test_step_credit_reduces_to_base(self):
        instance = BCCInstance(
            [fs("xy"), fs("z")],
            {fs("xy"): 8.0, fs("z"): 2.0},
            {fs("x"): 2.0, fs("y"): 2.0, fs("xy"): 3.0, fs("z"): 1.0},
            budget=4.0,
        )
        model = PartialCoverModel(instance, step_credit)
        selection = solve_partial_bcc(model)
        assert model.cost_of(selection) <= instance.budget + 1e-9
        assert model.utility_of(selection) == 10.0  # XY + Z

    def test_linear_credit_spends_on_partials(self):
        # Budget buys only X; step credit yields nothing, linear yields 5.
        instance = BCCInstance(
            [fs("xy")],
            {fs("xy"): 10.0},
            {fs("x"): 1.0, fs("y"): 5.0, fs("xy"): 5.0},
            budget=1.0,
        )
        step = solve_partial_bcc(PartialCoverModel(instance, step_credit))
        linear_model = PartialCoverModel(instance, linear_credit)
        linear = solve_partial_bcc(linear_model)
        assert PartialCoverModel(instance, step_credit).utility_of(step) == 0.0
        assert linear_model.utility_of(linear) == pytest.approx(5.0)
        assert linear == frozenset({fs("x")})

    @given(seed=st.integers(0, 400))
    @settings(max_examples=20, deadline=None)
    def test_budget_respected_and_at_least_exact_fraction(self, seed):
        rng = random.Random(seed)
        properties = list("abcd")
        queries = set()
        while len(queries) < 4:
            queries.add(frozenset(rng.sample(properties, rng.randint(1, 2))))
        instance = BCCInstance(
            sorted(queries, key=sorted),
            costs=None,
            budget=rng.randint(1, 5),
            default_cost=float(rng.randint(1, 3)),
        )
        model = PartialCoverModel(instance, linear_credit)
        selection = solve_partial_bcc(model)
        assert model.cost_of(selection) <= instance.budget + 1e-9
        # Exhaustive oracle over singleton classifiers only (upper bound
        # restricted): greedy must reach at least half of it.
        classifiers = sorted(instance.relevant_classifiers(), key=sorted)
        best = 0.0
        for r in range(len(classifiers) + 1):
            for combo in itertools.combinations(classifiers, r):
                if model.cost_of(combo) <= instance.budget + 1e-9:
                    best = max(best, model.utility_of(combo))
        assert model.utility_of(selection) >= best / 2.0 - 1e-9


class TestSharedCostModel:
    def instance(self):
        return BCCInstance(
            [fs("xy"), fs("xz")],
            {fs("xy"): 5.0, fs("xz"): 5.0},
            {
                fs("x"): 1.0,
                fs("y"): 1.0,
                fs("z"): 1.0,
                fs("xy"): 2.0,
                fs("xz"): 2.0,
            },
            budget=10.0,
        )

    def test_zero_property_costs_match_base(self):
        model = SharedCostModel(self.instance())
        assert model.cost_of([fs("xy"), fs("x")]) == 3.0

    def test_shared_property_paid_once(self):
        model = SharedCostModel(
            self.instance(), property_costs={"x": 4.0, "y": 1.0, "z": 1.0}
        )
        # XY and XZ share x: 2 + 2 (marginal) + 4 + 1 + 1 (data) = 10.
        assert model.cost_of([fs("xy"), fs("xz")]) == 10.0

    def test_marginal_cost_discounts_paid(self):
        model = SharedCostModel(self.instance(), property_costs={"x": 4.0})
        assert model.marginal_cost(fs("xy"), set()) == 6.0
        assert model.marginal_cost(fs("xy"), {"x"}) == 2.0

    def test_negative_property_cost_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SharedCostModel(self.instance(), property_costs={"x": -1.0})

    def test_subadditive(self):
        model = SharedCostModel(
            self.instance(), default_property_cost=3.0
        )
        separate = model.cost_of([fs("xy")]) + model.cost_of([fs("xz")])
        together = model.cost_of([fs("xy"), fs("xz")])
        assert together < separate


class TestSolveSharedCost:
    def test_prefers_shared_property_classifiers(self):
        # With a huge data cost on x, covering both queries via x-sharing
        # classifiers beats disjoint coverage.
        instance = BCCInstance(
            [fs("xy"), fs("xz")],
            {fs("xy"): 5.0, fs("xz"): 5.0},
            {
                fs("x"): 1.0,
                fs("y"): 1.0,
                fs("z"): 1.0,
                fs("xy"): 1.0,
                fs("xz"): 1.0,
            },
            budget=12.0,
        )
        model = SharedCostModel(instance, property_costs={"x": 6.0})
        selection = solve_shared_cost_bcc(model)
        assert model.cost_of(selection) <= instance.budget + 1e-9
        assert model.utility_of(selection) == 10.0

    def test_budget_respected(self):
        instance = BCCInstance(
            [fs("xy")],
            {fs("xy"): 5.0},
            None,
            budget=1.0,
            default_cost=1.0,
        )
        model = SharedCostModel(instance, default_property_cost=5.0)
        selection = solve_shared_cost_bcc(model)
        assert model.cost_of(selection) <= instance.budget + 1e-9

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_half_of_exhaustive(self, seed):
        rng = random.Random(seed)
        properties = list("abc")
        queries = set()
        while len(queries) < 3:
            queries.add(frozenset(rng.sample(properties, rng.randint(1, 2))))
        instance = BCCInstance(
            sorted(queries, key=sorted),
            costs=None,
            budget=float(rng.randint(2, 8)),
            default_cost=1.0,
        )
        model = SharedCostModel(
            instance,
            property_costs={p: float(rng.randint(0, 3)) for p in properties},
        )
        selection = solve_shared_cost_bcc(model)
        assert model.cost_of(selection) <= instance.budget + 1e-9
        classifiers = sorted(instance.relevant_classifiers(), key=sorted)
        best = 0.0
        for r in range(len(classifiers) + 1):
            for combo in itertools.combinations(classifiers, r):
                if model.cost_of(combo) <= instance.budget + 1e-9:
                    best = max(best, model.utility_of(combo))
        assert model.utility_of(selection) >= best / 2.0 - 1e-9
