"""Tests for the DkS/HkS heuristic suite (repro.dks)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dks import (
    HksPortfolio,
    improve_by_swaps,
    project_capped_simplex,
    solve_exact,
    solve_expansion,
    solve_hks,
    solve_lovasz,
    solve_peeling,
    solve_spectral,
)
from repro.graphs import WeightedGraph

ALL_HEURISTICS = [solve_peeling, solve_expansion, solve_lovasz, solve_spectral]


def random_graph(seed: int, n: int = 10, p: float = 0.4) -> WeightedGraph:
    rng = random.Random(seed)
    g = WeightedGraph()
    for i in range(n):
        g.add_node(i, cost=1.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j, rng.randint(1, 9))
    return g


def planted_clique_graph(seed: int, n: int = 20, clique: int = 5) -> WeightedGraph:
    """Sparse noise graph with a planted heavy clique on nodes 0..clique-1."""
    rng = random.Random(seed)
    g = WeightedGraph()
    for i in range(n):
        g.add_node(i, cost=1.0)
    for i in range(clique):
        for j in range(i + 1, clique):
            g.add_edge(i, j, 10.0)
    for _ in range(n):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, 1.0)
    return g


class TestProjection:
    def test_feasibility(self):
        y = np.array([3.0, -1.0, 0.5, 0.2])
        x = project_capped_simplex(y, 2)
        assert x.sum() == pytest.approx(2.0, abs=1e-6)
        assert (x >= -1e-9).all() and (x <= 1 + 1e-9).all()

    def test_already_feasible_unchanged(self):
        y = np.array([0.5, 0.5, 1.0])
        x = project_capped_simplex(y, 2)
        assert np.allclose(x, y, atol=1e-6)

    def test_k_zero(self):
        assert project_capped_simplex(np.array([1.0, 2.0]), 0).sum() == 0.0

    def test_k_equals_n(self):
        x = project_capped_simplex(np.array([0.2, -3.0]), 2)
        assert np.allclose(x, [1.0, 1.0])

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.array([1.0]), 2.5)

    @given(seed=st.integers(0, 2000), k=st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_projection_optimality_vs_scipy(self, seed, k):
        """The projection minimizes distance: check against scipy SLSQP."""
        from scipy.optimize import minimize

        rng = np.random.RandomState(seed)
        n = 6
        k = min(k, n)
        y = rng.randn(n) * 2
        x = project_capped_simplex(y, k)
        result = minimize(
            lambda z: ((z - y) ** 2).sum(),
            x0=np.full(n, k / n),
            bounds=[(0, 1)] * n,
            constraints=[{"type": "eq", "fun": lambda z: z.sum() - k}],
        )
        assert ((x - y) ** 2).sum() <= result.fun + 1e-5


class TestHeuristicsFindPlantedClique:
    @pytest.mark.parametrize("solver", ALL_HEURISTICS)
    def test_planted_clique_recovered(self, solver):
        g = planted_clique_graph(3)
        selection = solver(g, 5, random.Random(0))
        # The planted clique has weight 100; heuristics should get close.
        assert g.induced_weight(selection) >= 80.0

    @pytest.mark.parametrize("solver", ALL_HEURISTICS)
    def test_selection_size(self, solver):
        g = random_graph(1)
        selection = solver(g, 4, random.Random(0))
        assert len(selection) <= 4

    @pytest.mark.parametrize("solver", ALL_HEURISTICS)
    def test_k_zero_empty(self, solver):
        g = random_graph(2)
        assert solver(g, 0, random.Random(0)) == frozenset()

    @pytest.mark.parametrize("solver", ALL_HEURISTICS)
    def test_k_at_least_n_returns_all(self, solver):
        g = random_graph(3, n=5)
        assert solver(g, 10, random.Random(0)) == frozenset(range(5))

    @pytest.mark.parametrize("solver", ALL_HEURISTICS)
    def test_edgeless_graph(self, solver):
        g = WeightedGraph()
        for i in range(6):
            g.add_node(i)
        selection = solver(g, 3, random.Random(0))
        assert len(selection) <= 3


class TestExact:
    def test_matches_enumeration_on_triangle_plus(self):
        g = random_graph(11, n=7)
        best = solve_exact(g, 3)
        assert len(best) == 3

    def test_too_large_rejected(self):
        g = random_graph(0, n=30, p=0.1)
        with pytest.raises(ValueError):
            solve_exact(g, 3)


class TestLocalSearch:
    def test_never_decreases_weight(self):
        g = random_graph(5)
        start = frozenset(list(g.nodes)[:4])
        improved = improve_by_swaps(g, start)
        assert g.induced_weight(improved) >= g.induced_weight(start)
        assert len(improved) == len(start)

    def test_empty_selection(self):
        g = random_graph(6)
        assert improve_by_swaps(g, []) == frozenset()

    def test_full_selection_unchanged(self):
        g = random_graph(7, n=5)
        assert improve_by_swaps(g, g.nodes) == frozenset(g.nodes)


class TestPortfolio:
    def test_at_least_as_good_as_each_engine(self):
        g = random_graph(13, n=12)
        k = 5
        portfolio_weight = g.induced_weight(solve_hks(g, k))
        for solver in ALL_HEURISTICS:
            weight = g.induced_weight(solver(g, k, random.Random(0)))
            assert portfolio_weight >= weight - 1e-9

    def test_unknown_engine_rejected(self):
        g = random_graph(1)
        with pytest.raises(ValueError):
            HksPortfolio(engines=("nonsense",)).solve(g, 2)

    @given(seed=st.integers(0, 500), k=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_portfolio_near_exact_on_small_graphs(self, seed, k):
        g = random_graph(seed, n=9, p=0.5)
        k = min(k, len(g))
        heuristic = g.induced_weight(solve_hks(g, k))
        optimal = g.induced_weight(solve_exact(g, k))
        # Portfolio should recover at least 80% of the optimum on small inputs
        # (the paper reports 65%-80%+ for the HkS heuristic it builds on).
        assert heuristic >= 0.8 * optimal - 1e-9


class TestPortfolioMemo:
    """The structural (graph fingerprint, k) solve memo."""

    def test_repeat_solve_returns_same_object(self):
        g = random_graph(3, n=12, p=0.5)
        portfolio = HksPortfolio(seed=0)
        first = portfolio.solve(g, 4)
        second = portfolio.solve(g, 4)
        assert second is first  # object-level hit, arms not re-run

    def test_structural_hit_across_copies(self):
        g = random_graph(4, n=12, p=0.5)
        portfolio = HksPortfolio(seed=0)
        first = portfolio.solve(g, 4)
        assert portfolio.solve(g.copy(), 4) is first

    def test_mutation_misses_and_resolves(self):
        g = random_graph(5, n=12, p=0.5)
        portfolio = HksPortfolio(seed=0)
        first = portfolio.solve(g, 4)
        g.add_edge(0, 1, 100.0)
        second = portfolio.solve(g, 4)
        assert second is not first
        # The mutated graph now has its own memo line.
        assert portfolio.solve(g, 4) is second

    def test_distinct_k_entries_are_independent(self):
        g = random_graph(6, n=12, p=0.5)
        portfolio = HksPortfolio(seed=0)
        three = portfolio.solve(g, 3)
        five = portfolio.solve(g, 5)
        assert len(three) == 3 and len(five) == 5
        assert portfolio.solve(g, 3) is three
        assert portfolio.solve(g, 5) is five

    def test_pickle_drops_memo_but_solves_identically(self):
        import pickle

        g = random_graph(7, n=12, p=0.5)
        portfolio = HksPortfolio(seed=0)
        answer = portfolio.solve(g, 4)
        clone = pickle.loads(pickle.dumps(portfolio))
        assert clone._memo == {}
        assert clone.solve(g, 4) == answer
