"""Tests for the RAND / IG1 / IG2 baselines in all stopping modes."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ig1_bcc,
    ig1_ecc,
    ig1_gmc3,
    ig2_bcc,
    ig2_ecc,
    ig2_gmc3,
    rand_bcc,
    rand_ecc,
    rand_gmc3,
)
from repro.core import BCCInstance, ECCInstance, GMC3Instance, from_letters as fs
from tests.conftest import random_instance

BCC_BASELINES = [lambda i: rand_bcc(i, seed=3), ig1_bcc, ig2_bcc]


def small_workload():
    queries = [fs("x"), fs("y"), fs("xy"), fs("yz")]
    utilities = {fs("x"): 5.0, fs("y"): 2.0, fs("xy"): 4.0, fs("yz"): 3.0}
    costs = {
        fs("x"): 2.0,
        fs("y"): 1.0,
        fs("z"): 2.0,
        fs("xy"): 4.0,
        fs("yz"): 3.0,
    }
    return queries, utilities, costs


class TestBudgetMode:
    @pytest.mark.parametrize("baseline", BCC_BASELINES)
    def test_respects_budget(self, baseline):
        queries, utilities, costs = small_workload()
        instance = BCCInstance(queries, utilities, costs, budget=4.0)
        solution = baseline(instance)
        assert solution.cost <= 4.0 + 1e-9

    @pytest.mark.parametrize("baseline", BCC_BASELINES)
    def test_zero_budget(self, baseline):
        queries, utilities, costs = small_workload()
        instance = BCCInstance(queries, utilities, costs, budget=0.0)
        solution = baseline(instance)
        assert solution.cost == 0.0

    def test_ig1_prefers_high_ratio_query(self):
        queries, utilities, costs = small_workload()
        instance = BCCInstance(queries, utilities, costs, budget=2.0)
        solution = ig1_bcc(instance)
        # x has ratio 5/2; y has 2/1=2; xy needs 3 (X+Y) or 4 (XY).
        assert fs("x") in solution.covered
        assert solution.utility >= 5.0

    def test_ig2_counts_containing_queries(self):
        # Y appears in y, xy, yz: utility mass 9 at cost 1 -> picked first.
        queries, utilities, costs = small_workload()
        instance = BCCInstance(queries, utilities, costs, budget=1.0)
        solution = ig2_bcc(instance)
        assert solution.classifiers == frozenset({fs("y")})

    def test_rand_deterministic_per_seed(self):
        queries, utilities, costs = small_workload()
        instance = BCCInstance(queries, utilities, costs, budget=5.0)
        a = rand_bcc(instance, seed=11)
        b = rand_bcc(instance, seed=11)
        assert a.classifiers == b.classifiers

    def test_infinite_cost_never_selected(self, fig1_b11):
        for baseline in BCC_BASELINES:
            solution = baseline(fig1_b11)
            assert fs("xy") not in solution.classifiers

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_all_feasible_on_random_instances(self, seed):
        instance = random_instance(seed)
        for baseline in BCC_BASELINES:
            solution = baseline(instance)
            assert solution.cost <= instance.budget + 1e-9


class TestTargetMode:
    def test_reaches_target(self):
        queries, utilities, costs = small_workload()
        instance = GMC3Instance(queries, utilities, costs, target=7.0)
        for baseline in (lambda i: rand_gmc3(i, seed=0), ig1_gmc3, ig2_gmc3):
            solution = baseline(instance)
            assert solution.utility >= 7.0
            assert solution.meta["reached_target"]

    def test_target_zero_trivial(self):
        queries, utilities, costs = small_workload()
        instance = GMC3Instance(queries, utilities, costs, target=0.0)
        solution = ig1_gmc3(instance)
        assert solution.cost == 0.0

    def test_greedy_cheaper_than_random(self):
        queries, utilities, costs = small_workload()
        instance = GMC3Instance(queries, utilities, costs, target=10.0)
        greedy = ig1_gmc3(instance)
        rand = rand_gmc3(instance, seed=5)
        assert greedy.cost <= rand.cost + 1e-9

    def test_unreachable_target_reports(self):
        queries, utilities, costs = small_workload()
        instance = GMC3Instance(queries, utilities, costs, target=10_000.0)
        solution = ig1_gmc3(instance)
        assert not solution.meta["reached_target"]


class TestCoverMode:
    def test_returns_best_ratio_snapshot(self):
        queries, utilities, costs = small_workload()
        instance = ECCInstance(queries, utilities, costs)
        for baseline in (lambda i: rand_ecc(i, seed=0), ig1_ecc, ig2_ecc):
            solution = baseline(instance)
            assert solution.utility > 0
            assert solution.ratio > 0

    def test_snapshot_at_least_final_ratio(self):
        queries, utilities, costs = small_workload()
        instance = ECCInstance(queries, utilities, costs)
        solution = ig2_ecc(instance)
        # The snapshot is the max over prefixes, so it is at least the
        # ratio of covering everything.
        from repro.mc3 import full_cover_cost

        full_ratio = sum(utilities.values()) / full_cover_cost(instance)
        assert solution.ratio >= full_ratio - 1e-9
