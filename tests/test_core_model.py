"""Unit tests for repro.core.model."""

import math

import pytest

from repro.core import (
    BCCInstance,
    ECCInstance,
    GMC3Instance,
    InvalidInstanceError,
    from_letters as fs,
    powerset_classifiers,
)


class TestPowersetClassifiers:
    def test_singleton(self):
        assert set(powerset_classifiers(fs("x"))) == {fs("x")}

    def test_pair(self):
        assert set(powerset_classifiers(fs("xy"))) == {fs("x"), fs("y"), fs("xy")}

    def test_triple_count(self):
        assert len(list(powerset_classifiers(fs("xyz")))) == 7

    def test_excludes_empty_set(self):
        assert frozenset() not in set(powerset_classifiers(fs("xy")))


class TestWorkloadValidation:
    def test_empty_query_set_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([], budget=1.0)

    def test_empty_query_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([frozenset()], budget=1.0)

    def test_duplicate_query_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([fs("x"), fs("x")], budget=1.0)

    def test_non_frozenset_query_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([{"x"}], budget=1.0)  # type: ignore[list-item]

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([fs("x")], budget=-1.0)

    def test_infinite_budget_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([fs("x")], budget=math.inf)

    def test_utility_for_unknown_query_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([fs("x")], utilities={fs("y"): 1.0}, budget=1.0)

    def test_zero_utility_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([fs("x")], utilities={fs("x"): 0.0}, budget=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BCCInstance([fs("x")], costs={fs("x"): -2.0}, budget=1.0)

    def test_infinite_cost_allowed(self):
        instance = BCCInstance([fs("xy")], costs={fs("xy"): math.inf}, budget=1.0)
        assert instance.cost(fs("xy")) == math.inf


class TestWorkloadAccessors:
    def test_properties_union(self, fig1_b3):
        assert fig1_b3.properties == frozenset("xyz")

    def test_length_parameter(self, fig1_b3):
        assert fig1_b3.length == 3

    def test_default_utility(self):
        instance = BCCInstance([fs("x")], budget=1.0, default_utility=5.0)
        assert instance.utility(fs("x")) == 5.0

    def test_default_cost(self):
        instance = BCCInstance([fs("x")], budget=1.0, default_cost=7.0)
        assert instance.cost(fs("x")) == 7.0

    def test_unknown_query_utility_raises(self, fig1_b3):
        with pytest.raises(KeyError):
            fig1_b3.utility(fs("w"))

    def test_total_utility(self, fig1_b3):
        assert fig1_b3.total_utility() == 11.0

    def test_relevant_classifiers_fig1(self, fig1_b3):
        # 2^{xyz} + 2^{xz} + 2^{xy} minus empty = 7 distinct sets.
        assert len(fig1_b3.relevant_classifiers()) == 7

    def test_relevant_classifiers_exclude_irrelevant(self):
        # P = {x,y,z}, Q = {xy, xz}: YZ is NOT relevant (Section 2.1).
        instance = BCCInstance([fs("xy"), fs("xz")], budget=1.0)
        relevant = instance.relevant_classifiers()
        assert fs("yz") not in relevant
        assert relevant == {fs("x"), fs("y"), fs("z"), fs("xy"), fs("xz")}

    def test_feasible_excludes_infinite(self, fig1_b3):
        feasible = set(fig1_b3.feasible_classifiers())
        assert fs("xy") not in feasible
        assert fs("yz") in feasible

    def test_queries_containing(self, fig1_b3):
        containing_y = fig1_b3.queries_containing(fs("y"))
        assert set(containing_y) == {fs("xyz"), fs("xy")}

    def test_queries_containing_multi(self, fig1_b3):
        containing = fig1_b3.queries_containing(fs("xz"))
        assert set(containing) == {fs("xyz"), fs("xz")}

    def test_length_histogram(self, fig1_b3):
        assert fig1_b3.length_histogram() == {3: 1, 2: 2}

    def test_with_budget_copies(self, fig1_b3):
        other = fig1_b3.with_budget(10.0)
        assert other.budget == 10.0
        assert fig1_b3.budget == 3.0
        assert other.utility(fs("xyz")) == 8.0


class TestOtherInstances:
    def test_gmc3_target_validation(self):
        with pytest.raises(InvalidInstanceError):
            GMC3Instance([fs("x")], target=-1.0)

    def test_gmc3_as_bcc(self):
        gmc3 = GMC3Instance([fs("x")], utilities={fs("x"): 4.0}, target=2.0)
        bcc = gmc3.as_bcc(budget=9.0)
        assert isinstance(bcc, BCCInstance)
        assert bcc.budget == 9.0
        assert bcc.utility(fs("x")) == 4.0

    def test_ecc_as_bcc(self):
        ecc = ECCInstance([fs("xy")], costs={fs("xy"): 3.0})
        bcc = ecc.as_bcc(budget=5.0)
        assert bcc.cost(fs("xy")) == 3.0
