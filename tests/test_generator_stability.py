"""Cross-version stability of the dataset generators.

Experiments and EXPERIMENTS.md quote numbers for specific seeds; these
tests pin the generators' aggregate outputs so an accidental change to a
generator (which would silently invalidate every quoted number) fails
loudly.  If you change a generator *intentionally*, update the pinned
values and regenerate EXPERIMENTS.md's measurements.
"""

import pytest

from repro.datasets import generate_bestbuy, generate_private, generate_synthetic


class TestPinnedAggregates:
    def test_bestbuy_seed1(self):
        instance = generate_bestbuy(n_queries=200, n_properties=220, seed=1)
        assert instance.num_queries == 200
        assert instance.total_utility() == pytest.approx(329.0)
        assert len(instance.properties) == 178

    def test_private_seed3(self):
        instance = generate_private(n_queries=200, n_properties=320, seed=3)
        assert instance.num_queries == 200
        assert instance.total_utility() == pytest.approx(2019.0)
        assert instance.length_histogram()[1] == 110

    def test_synthetic_seed5(self):
        instance = generate_synthetic(n_queries=200, n_properties=150, seed=5)
        assert instance.num_queries == 200
        assert instance.total_utility() == pytest.approx(4833.0)
        assert instance.length == 6
