"""Tests for the parallel execution layer (``repro.parallel``).

The layer's contract has three legs, and each gets its own section here:

1. **Bit-identical results** — every figure helper and the HkS portfolio
   produce the same answers at ``jobs=1`` and ``jobs=4`` (same utilities,
   costs, classifier sets and certificates), because tasks are pure
   functions of their derived seeds and results reduce in task order.
2. **Stable fingerprints** — the cache key is invariant under query
   order, dict insertion order and float formatting, and distinct
   instances never collide on the seeded corpus.
3. **Deterministic caching** — a warm run replays the cold run byte for
   byte (stored wall seconds included), hits re-certify, eviction is LRU,
   and ``REPRO_CACHE=0`` switches the whole thing off.

The heavyweight figure sweeps and the 3× stress run are marked ``slow``
and excluded from the default pytest invocation; the CI ``slow`` leg
runs them with ``-m slow``.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BCCInstance
from repro.dks import HksPortfolio
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import FigureResult, averaged_random
from repro.experiments.scales import MICRO
from repro.graphs import WeightedGraph
from repro.parallel import (
    ParallelConfig,
    ResultCache,
    SolveTask,
    TaskBatch,
    corpus_figure,
    corpus_tasks,
    default_cache,
    derive_rng,
    instance_fingerprint,
    pmap,
    resolve_jobs,
    run_tasks,
    seed_for,
    spawn_keys,
    task_fingerprint,
)
from repro.parallel.cache import CACHE_VERSION
from repro.qk import QKConfig, solve_qk, solve_qk_taylor
from repro.verify.certificate import verify_solution
from tests.strategies import bcc_instances, reencoded_bcc_pairs

JOBS = 4


# ---------------------------------------------------------------------------
# Splittable seeding
# ---------------------------------------------------------------------------


class TestSeeding:
    def test_pinned_values(self):
        # Frozen forever: changing these silently re-seeds every cached
        # and recorded randomized result in the repo.
        assert seed_for("fig3a", 120.0, "RAND", 3) == 17009802019263918618
        assert seed_for("corpus", "figure-1", "rand-bcc") == 13298288819621019598
        assert seed_for() == 6030909613583296255

    def test_deterministic_and_distinct(self):
        keys = [
            ("fig3a", 100.0, "RAND", 0),
            ("fig3a", 100.0, "RAND", 1),
            ("fig3a", 200.0, "RAND", 0),
            ("fig3b", 100.0, "RAND", 0),
            ("fig3a", 100.0, "IG1", 0),
        ]
        seeds = [seed_for(*key) for key in keys]
        assert seeds == [seed_for(*key) for key in keys]
        assert len(set(seeds)) == len(keys)

    def test_type_tags_distinguish(self):
        assert seed_for(2) != seed_for(2.0)
        assert seed_for(True) != seed_for(1)
        assert seed_for(None) != seed_for("None")
        assert seed_for("ab") != seed_for("a", "b")

    def test_frozenset_order_invariant(self):
        assert seed_for(frozenset("abc")) == seed_for(frozenset("cba"))
        assert seed_for(frozenset({1, 2, 3})) == seed_for(frozenset({3, 1, 2}))

    def test_derive_rng_independent_streams(self):
        a = derive_rng("task", 0).random()
        b = derive_rng("task", 1).random()
        assert a == derive_rng("task", 0).random()
        assert a != b

    def test_spawn_keys(self):
        children = spawn_keys(("fig", 1), 3)
        assert children == (("fig", 1, 0), ("fig", 1, 1), ("fig", 1, 2))
        assert len({seed_for(*child) for child in children}) == 3


# ---------------------------------------------------------------------------
# Instance fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(pair=reencoded_bcc_pairs())
    def test_invariant_under_reencoding(self, pair):
        instance, twin = pair
        assert instance_fingerprint(instance) == instance_fingerprint(twin)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        instance=bcc_instances(allow_inf_cost=False),
        delta=st.floats(0.5, 100.0, allow_nan=False),
    )
    def test_budget_change_changes_fingerprint(self, instance, delta):
        shifted = BCCInstance(
            list(instance.queries),
            {q: instance.utility(q) for q in instance.queries},
            dict(instance._costs),
            budget=instance.budget + delta,
            default_utility=instance.default_utility,
            default_cost=instance.default_cost,
        )
        assert instance_fingerprint(instance) != instance_fingerprint(shifted)

    def test_float_formatting_normalized(self):
        q = frozenset({"a", "b"})
        base = dict(queries=[q], default_utility=1.0, default_cost=1.0)
        left = BCCInstance(utilities={q: 3}, costs={frozenset({"a"}): 2}, budget=5, **base)
        right = BCCInstance(
            utilities={q: 3.0}, costs={frozenset({"a"}): 2.0}, budget=5.0, **base
        )
        assert instance_fingerprint(left) == instance_fingerprint(right)

    def test_no_collisions_on_seeded_corpus(self):
        from repro.verify.corpus import corpus_cases

        cases = list(corpus_cases(seeds=range(3)))
        fingerprints = {instance_fingerprint(case.instance) for case in cases}
        assert len(fingerprints) == len(cases)

    def test_task_fingerprint_dimensions(self):
        instance = BCCInstance([frozenset({"a"})], budget=1.0)
        base = task_fingerprint(instance, "abcc", None)
        assert base == task_fingerprint(instance, "abcc", None)
        assert base != task_fingerprint(instance, "ig1-bcc", None)
        assert base != task_fingerprint(instance, "abcc", 0)
        assert task_fingerprint(instance, "abcc", 0) != task_fingerprint(instance, "abcc", 1)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def _tiny_instance() -> BCCInstance:
    q1, q2 = frozenset({"a", "b"}), frozenset({"b", "c"})
    return BCCInstance(
        [q1, q2],
        {q1: 5.0, q2: 3.0},
        {frozenset({"b"}): 1.0, frozenset({"a", "b"}): 2.0},
        budget=3.0,
    )


class TestResultCache:
    def test_hit_round_trips_and_recertifies(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        instance = _tiny_instance()
        task = SolveTask(key="t", solver="abcc", instance=instance)
        cold = run_tasks([task], ParallelConfig(jobs=1, cache=cache))[0]
        assert not cold.cached and cache.stats.misses == 1

        warm = run_tasks([task], ParallelConfig(jobs=1, cache=cache, certify=True))[0]
        assert warm.cached
        assert warm.seconds == cold.seconds  # stored wall seconds replay
        assert warm.solution.utility == cold.solution.utility
        assert warm.solution.cost == cold.solution.cost
        assert warm.solution.classifiers == cold.solution.classifiers
        # The hit re-derives its certificate from scratch and it validates.
        certificate = warm.solution.meta["certificate"]
        reference = verify_solution(
            instance, warm.solution, certificate=certificate, budget=instance.budget
        )
        assert certificate.to_json() == reference.to_json()

    def test_certificates_never_stored(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        task = SolveTask(key="t", solver="abcc", instance=_tiny_instance(), certify=True)
        run_tasks([task], ParallelConfig(jobs=1, cache=cache))
        [entry] = tmp_path.glob("*.json")
        assert "certificate" not in json.loads(entry.read_text())["solution"]["meta"]

    def test_lru_eviction_drops_oldest(self, tmp_path):
        import os

        cache = ResultCache(directory=tmp_path, max_entries=2)
        solution = run_tasks([SolveTask("t", "abcc", _tiny_instance())], None)[0].solution
        cache.put("a" * 8, solution, 0.1)
        cache.put("b" * 8, solution, 0.1)
        os.utime(tmp_path / ("a" * 8 + ".json"), (1.0, 1.0))  # age entry "a"
        cache.put("c" * 8, solution, 0.1)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a" * 8) is None
        assert cache.get("b" * 8) is not None
        assert cache.get("c" * 8) is not None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        solution = run_tasks([SolveTask("t", "abcc", _tiny_instance())], None)[0].solution
        cache.put("deadbeef", solution, 0.5)
        path = tmp_path / "deadbeef.json"
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get("deadbeef") is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        (tmp_path / "deadbeef.json").write_text("{not json")
        assert cache.get("deadbeef") is None
        assert cache.stats.misses == 1

    def test_default_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert default_cache() is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        cache = default_cache()
        assert cache is not None and cache.directory == tmp_path / "custom"


# ---------------------------------------------------------------------------
# Pool mechanics
# ---------------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


class TestPool:
    def test_resolve_jobs(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(10_000) == 64  # clamped to MAX_JOBS
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "nope")
        with pytest.raises(ValueError):
            resolve_jobs(None)
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_pmap_preserves_order(self):
        items = list(range(20))
        expected = [_square(x) for x in items]
        assert pmap(_square, items, jobs=1) == expected
        assert pmap(_square, items, jobs=2) == expected

    def test_duplicate_task_keys_rejected(self):
        task = SolveTask(key="same", solver="abcc", instance=_tiny_instance())
        with pytest.raises(ValueError, match="duplicate task key"):
            run_tasks([task, task], None)

    def test_batch_results_keyed_access(self):
        batch = TaskBatch()
        batch.add("one", "abcc", _tiny_instance())
        results = batch.run(None)
        assert len(results) == 1
        assert results.solution("one").utility == results["one"].solution.utility
        assert results.seconds("one") >= 0.0


# ---------------------------------------------------------------------------
# Serial vs. parallel equality
# ---------------------------------------------------------------------------


def _comparable(result: FigureResult, include_values: bool = True) -> str:
    """Canonical rows minus wall-clock; optionally minus the value column.

    Timing-valued figures (3e, 4d) chart wall seconds, which legitimately
    differ between runs — for those we still compare every solution,
    extra and x/algorithm cell, just not the measured value.
    """
    if include_values:
        return result.canonical(include_seconds=False)
    stripped = FigureResult(
        figure=result.figure,
        title=result.title,
        x_label=result.x_label,
        value_label=result.value_label,
        notes=list(result.notes),
    )
    for row in result.rows:
        stripped.add(row.x, row.algorithm, 0.0, 0.0, **row.extra)
    return stripped.canonical(include_seconds=False)


#: Figures whose *value column* is a wall-clock measurement.
_TIMING_FIGURES = frozenset({"fig3e", "fig4d", "figdrift"})

#: Cheap-at-MICRO figures run in tier-1; the rest ride the slow CI leg.
_FAST_FIGURES = frozenset({"fig3a", "fig3d", "fig4a", "fig4e"})

_FIGURE_PARAMS = [
    pytest.param(name, marks=[] if name in _FAST_FIGURES else [pytest.mark.slow])
    for name in sorted(ALL_FIGURES)
]


class TestSerialParallelEquality:
    @pytest.mark.parametrize("name", _FIGURE_PARAMS)
    def test_figure_identical_across_jobs(self, name):
        figure = ALL_FIGURES[name]
        serial = figure(scale=MICRO, seed=0, parallel=ParallelConfig(jobs=1))
        fanned = figure(scale=MICRO, seed=0, parallel=ParallelConfig(jobs=JOBS))
        include_values = name not in _TIMING_FIGURES
        assert _comparable(serial, include_values) == _comparable(fanned, include_values)

    def test_corpus_tasks_identical_with_certificates(self):
        tasks = corpus_tasks(seeds=range(1))
        serial = run_tasks(tasks, ParallelConfig(jobs=1, certify=True))
        fanned = run_tasks(tasks, ParallelConfig(jobs=JOBS, certify=True))
        assert len(serial) == len(fanned) == len(tasks)
        for task, left, right in zip(tasks, serial, fanned):
            assert left.key == right.key == task.key
            assert left.solution.utility == right.solution.utility
            assert left.solution.cost == right.solution.cost
            assert left.solution.classifiers == right.solution.classifiers
            assert left.solution.covered == right.solution.covered
            lcert = left.solution.meta["certificate"]
            rcert = right.solution.meta["certificate"]
            assert lcert.to_json() == rcert.to_json()
            # Both certify from first principles against the instance.
            verify_solution(task.instance, left.solution, certificate=lcert)

    def test_portfolio_identical_across_jobs(self):
        for seed in range(4):
            graph = _random_graph(seed)
            serial = HksPortfolio(seed=seed, jobs=1).solve(graph, 4)
            fanned = HksPortfolio(seed=seed, jobs=JOBS).solve(graph, 4)
            assert serial == fanned

    def test_portfolio_identical_through_qk_paths(self):
        graph = _random_graph(7, n=12)
        heuristic_serial = solve_qk(graph, 6.0, QKConfig(hks=HksPortfolio(jobs=1)))
        heuristic_fanned = solve_qk(graph, 6.0, QKConfig(hks=HksPortfolio(jobs=JOBS)))
        assert heuristic_serial == heuristic_fanned
        taylor_serial = solve_qk_taylor(graph, 6.0, dks=HksPortfolio(jobs=1))
        taylor_fanned = solve_qk_taylor(graph, 6.0, dks=HksPortfolio(jobs=JOBS))
        assert taylor_serial == taylor_fanned


def _random_graph(seed: int, n: int = 10, p: float = 0.4) -> WeightedGraph:
    rng = random.Random(seed)
    graph = WeightedGraph()
    for i in range(n):
        graph.add_node(i, cost=1.0)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j, float(rng.randint(1, 9)))
    return graph


# ---------------------------------------------------------------------------
# averaged_random seeding
# ---------------------------------------------------------------------------


class _SeededValue:
    """Picklable stand-in for a randomized baseline: pure function of seed."""

    def __call__(self, seed: int):
        from repro.core.solution import Solution

        value = random.Random(seed).uniform(0.0, 100.0)
        return Solution(
            classifiers=frozenset(), covered=frozenset(), cost=0.0, utility=value
        )


class TestAveragedRandom:
    def test_pins_historical_serial_mean(self):
        # The historical behavior: trial i runs with seed i, mean in
        # trial order.  The parallel rewrite must not move this number.
        run = _SeededValue()
        expected = sum(run(s).utility for s in range(5)) / 5
        mean, seconds, last = averaged_random(run, repeats=5)
        assert mean == expected
        assert seconds >= 0.0
        assert last.utility == run(4).utility

    def test_parallel_matches_serial(self):
        run = _SeededValue()
        serial_mean, _, serial_last = averaged_random(run, repeats=6, jobs=1)
        fanned_mean, _, fanned_last = averaged_random(run, repeats=6, jobs=2)
        assert serial_mean == fanned_mean
        assert serial_last.utility == fanned_last.utility

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            averaged_random(_SeededValue(), repeats=0)


# ---------------------------------------------------------------------------
# Stress: repeated warm sweeps are byte-identical
# ---------------------------------------------------------------------------


class TestStress:
    @pytest.mark.slow
    def test_corpus_sweep_three_runs_byte_identical(self, tmp_path):
        """The seed-stability referee: 3 runs, same seed, same bytes.

        The first run executes cold (jobs=2) and populates the cache; the
        stored wall seconds then replay on every warm run, so all three
        ``FigureResult`` rows — seconds included — hash identically.
        """
        cache = ResultCache(directory=tmp_path)
        config = ParallelConfig(jobs=2, cache=cache)
        digests = [
            corpus_figure(parallel=config, seeds=range(2)).digest(include_seconds=True)
            for _ in range(3)
        ]
        assert digests[0] == digests[1] == digests[2]
        assert cache.stats.hits > 0  # runs 2 and 3 came from the cache

    def test_corpus_uncached_runs_agree_beyond_timing(self):
        serial = corpus_figure(parallel=ParallelConfig(jobs=1), seeds=range(1))
        fanned = corpus_figure(parallel=ParallelConfig(jobs=2), seeds=range(1))
        assert serial.canonical(include_seconds=False) == fanned.canonical(
            include_seconds=False
        )
