"""Tests for the dataset generators: paper-reported marginals must hold."""

import math

import pytest

from repro.datasets import (
    dataset_stats,
    generate_bestbuy,
    generate_private,
    generate_synthetic,
    instance_from_json,
    instance_to_json,
    load_instance,
    save_instance,
)


class TestBestBuy:
    @pytest.fixture(scope="class")
    def instance(self):
        return generate_bestbuy(seed=1)

    def test_size(self, instance):
        stats = dataset_stats(instance)
        assert stats["num_queries"] == 1000
        assert stats["num_properties"] <= 725

    def test_length_marginals(self, instance):
        stats = dataset_stats(instance)
        # Paper: 65% singletons, >95% length <= 2, average ~1.4.
        assert 0.60 <= stats["frac_length_1"] <= 0.70
        assert stats["frac_length_le_2"] >= 0.95
        assert 1.3 <= stats["avg_length"] <= 1.5

    def test_uniform_costs(self, instance):
        stats = dataset_stats(instance)
        assert stats["num_explicit_costs"] == 0
        assert instance.default_cost == 1.0

    def test_total_utility_around_1k(self, instance):
        # Paper: "the total utility possible over the BB dataset is ~1K".
        total = instance.total_utility()
        assert 800 <= total <= 1600

    def test_zipf_head(self, instance):
        stats = dataset_stats(instance)
        assert stats["max_utility"] >= 20

    def test_deterministic_per_seed(self):
        a = generate_bestbuy(seed=5)
        b = generate_bestbuy(seed=5)
        assert a.queries == b.queries
        assert all(a.utility(q) == b.utility(q) for q in a.queries)

    def test_different_seeds_differ(self):
        a = generate_bestbuy(seed=1)
        b = generate_bestbuy(seed=2)
        assert a.queries != b.queries

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_bestbuy(n_queries=0)
        with pytest.raises(ValueError):
            generate_bestbuy(n_properties=1)


class TestPrivate:
    @pytest.fixture(scope="class")
    def instance(self):
        # Note: the paper's stated 5K/2K ratio cannot host 55% *distinct*
        # singleton queries (see repro.datasets.lengths); tests use a
        # feasible ratio so the marginal checks are meaningful.
        return generate_private(n_queries=2000, n_properties=2400, seed=3)

    def test_size(self, instance):
        stats = dataset_stats(instance)
        assert stats["num_queries"] == 2000
        assert stats["num_properties"] <= 2400

    def test_length_marginals(self, instance):
        stats = dataset_stats(instance)
        # Paper: 55% singletons, >=95% length <= 2, lengths 1..5.
        assert 0.45 <= stats["frac_length_1"] <= 0.75
        assert stats["frac_length_le_2"] >= 0.90
        assert stats["max_length"] <= 5

    def test_cost_marginals(self, instance):
        stats = dataset_stats(instance)
        # Paper: costs in [0, 50], average ~8.
        assert stats["max_finite_cost"] <= 50
        assert 4 <= stats["avg_finite_cost"] <= 14

    def test_utilities_in_range(self, instance):
        for q in instance.queries:
            assert 1.0 <= instance.utility(q) <= 50.0

    def test_some_impractical_classifiers(self, instance):
        stats = dataset_stats(instance)
        assert stats["num_impractical"] > 0

    def test_popular_queries_have_popular_subqueries(self, instance):
        """For popular pair queries present with both their singleton
        subqueries, subquery utility should correlate with popularity."""
        query_set = set(instance.queries)
        pairs_with_subs = [
            q
            for q in instance.queries
            if len(q) == 2 and all(frozenset({p}) in query_set for p in q)
        ]
        # The subquery-boost mechanism must produce a meaningful number.
        assert len(pairs_with_subs) >= 50

    def test_deterministic_per_seed(self):
        a = generate_private(n_queries=300, n_properties=400, seed=9)
        b = generate_private(n_queries=300, n_properties=400, seed=9)
        assert a.queries == b.queries


class TestSynthetic:
    @pytest.fixture(scope="class")
    def instance(self):
        return generate_synthetic(n_queries=5000, n_properties=6000, seed=7)

    def test_size(self, instance):
        assert instance.num_queries == 5000

    def test_length_distribution(self, instance):
        stats = dataset_stats(instance)
        # Geometric: ~50% singletons, ~25% pairs, average ~1.9, max 6.
        assert 0.45 <= stats["frac_length_1"] <= 0.56
        assert stats["max_length"] <= 6
        assert 1.7 <= stats["avg_length"] <= 2.1

    def test_cost_and_utility_ranges(self, instance):
        stats = dataset_stats(instance)
        assert stats["max_finite_cost"] <= 50
        for q in list(instance.queries)[:100]:
            assert 1.0 <= instance.utility(q) <= 50.0

    def test_regeneration_differs(self):
        a = generate_synthetic(n_queries=200, n_properties=100, seed=1)
        b = generate_synthetic(n_queries=200, n_properties=100, seed=2)
        assert a.queries != b.queries

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_synthetic(n_queries=0)
        with pytest.raises(ValueError):
            generate_synthetic(n_properties=2)


class TestSchema:
    def test_round_trip(self, fig1_b4):
        payload = instance_to_json(fig1_b4)
        rebuilt = instance_from_json(payload)
        assert rebuilt.queries == fig1_b4.queries
        assert rebuilt.budget == fig1_b4.budget
        for q in fig1_b4.queries:
            assert rebuilt.utility(q) == fig1_b4.utility(q)
        for c in fig1_b4.relevant_classifiers():
            assert rebuilt.cost(c) == fig1_b4.cost(c)

    def test_infinite_cost_round_trip(self, fig1_b4):
        rebuilt = instance_from_json(instance_to_json(fig1_b4))
        from repro.core import from_letters as fs

        assert math.isinf(rebuilt.cost(fs("xy")))

    def test_file_round_trip(self, tmp_path, fig1_b11):
        path = tmp_path / "instance.json"
        save_instance(fig1_b11, path)
        loaded = load_instance(path)
        assert loaded.queries == fig1_b11.queries
        assert loaded.budget == 11.0

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            instance_from_json({"format": 999})
