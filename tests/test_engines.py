"""Engine-identity suite: every backend against the ``sets`` reference.

Promoted from ``test_bitset.py`` (which keeps the bits-specific
compilation-layer tests) and parametrized over all registered engines:

- tracker trace differentials — add / probe / checkpoint / rollback /
  remove / reset traces must match the ``sets`` reference snapshot for
  snapshot, float for float;
- checkpoint/rollback replay equivalence — a rolled-back tracker must be
  indistinguishable from one that never took the detour;
- the batched slate-probe API (``probe_gain_batch``) — element ``i``
  must be float-exact equal to ``probe_gain(slates[i])`` on every
  backend, read-only under checkpoint/rollback interleaving, and
  stale-safe after workload mutation;
- every solver arm registered in ``default_arms()`` on the seeded
  corpus, identical utilities/costs/selections across all engines.

Wide-universe instances (hundreds of properties, short plans — the
matrix engine's target regime) come from
:func:`tests.strategies.wide_bcc_instances`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.residual import ResidualProblem
from repro.core import BCCInstance, CoverageTracker, from_letters as fs
from repro.core.bitset import (
    ENGINES,
    MASK_ENGINES,
    matrix_available,
    matrix_workload,
    use_engine,
)
from repro.core.coverage import (
    BitsetCoverageTracker,
    MatrixCoverageTracker,
    SetCoverageTracker,
    covered_queries,
)
from repro.core.errors import StaleWorkloadError
from repro.verify.corpus import corpus
from repro.verify.differential import (
    _ecc_view,
    _gmc3_view,
    _has_finite_full_cover,
    _oracle_feasible,
    default_arms,
)
from tests.strategies import solvable_instances, wide_bcc_instances


def _fig1() -> BCCInstance:
    import math

    queries = [fs("xyz"), fs("xz"), fs("xy")]
    utilities = {fs("xyz"): 8.0, fs("xz"): 1.0, fs("xy"): 2.0}
    costs = {
        fs("x"): 5.0,
        fs("y"): 3.0,
        fs("z"): 3.0,
        fs("xyz"): 3.0,
        fs("xz"): 4.0,
        fs("yz"): 0.0,
        fs("xy"): math.inf,
    }
    return BCCInstance(queries, utilities, costs, budget=4.0)


def _snapshot(tracker, workload):
    return (
        tracker.selected,
        tracker.covered,
        tracker.utility,
        tracker.spent,
        {q: tracker.missing_properties(q) for q in workload.queries},
    )


def _clone(instance: BCCInstance) -> BCCInstance:
    """A fresh instance (fresh compiled/matrix caches) with equal content."""
    return BCCInstance(
        list(instance.queries),
        {q: instance.utility(q) for q in instance.queries},
        {c: instance.cost(c) for c in instance.relevant_classifiers()},
        budget=instance.budget,
        default_utility=instance.default_utility,
        default_cost=instance.default_cost,
    )


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestEngineDispatch:
    def test_matrix_engine_is_registered(self):
        assert "matrix" in ENGINES
        assert set(MASK_ENGINES) == {"bits", "matrix"}
        assert matrix_available()

    def test_tracker_dispatch_per_engine(self):
        instance = _fig1()
        with use_engine("sets"):
            assert not isinstance(CoverageTracker(instance), BitsetCoverageTracker)
        with use_engine("bits"):
            assert type(CoverageTracker(instance)) is BitsetCoverageTracker
        with use_engine("matrix"):
            tracker = CoverageTracker(instance)
        assert type(tracker) is MatrixCoverageTracker
        assert tracker.engine_name == "matrix"
        # The matrix backend *is* a bits tracker plus numpy probe kernels.
        assert isinstance(tracker, BitsetCoverageTracker)

    @settings(max_examples=10, deadline=None)
    @given(instance=wide_bcc_instances())
    def test_wide_universe_spans_multiple_words(self, instance):
        """The wide strategy must actually exercise multi-word masks."""
        assert matrix_workload(instance).words >= 2


# ----------------------------------------------------------------------
# tracker trace differential, every mask engine vs the sets reference
# ----------------------------------------------------------------------
class TestTrackerTraceDifferential:
    def _differential_trace(self, instance, engine):
        pool = sorted(instance.relevant_classifiers(), key=sorted)[:12]
        with use_engine("sets"):
            reference = SetCoverageTracker(instance)
        with use_engine(engine):
            candidate = CoverageTracker(instance)
        trackers = (reference, candidate)

        def check():
            assert _snapshot(reference, instance) == _snapshot(candidate, instance)

        check()
        for classifier in pool[:4] + pool[:1]:
            assert reference.add(classifier) == candidate.add(classifier)
            check()
        for slate in (pool[4:8], pool[:2], [frozenset()], []):
            assert reference.probe_gain(slate) == candidate.probe_gain(slate)
            check()
        for classifier in pool:
            assert (
                reference.uncovered_contained_utility(classifier)
                == candidate.uncovered_contained_utility(classifier)
            )
        for tracker in trackers:
            tracker.checkpoint()
        for classifier in pool[4:8]:
            assert reference.add(classifier) == candidate.add(classifier)
            check()
        for tracker in trackers:
            tracker.rollback()
        check()
        for classifier in pool[:2]:
            assert reference.remove(classifier) == candidate.remove(classifier)
            check()
        for tracker in trackers:
            tracker.reset()
        check()

    @pytest.mark.parametrize("engine", MASK_ENGINES)
    @settings(max_examples=30, deadline=None)
    @given(instance=solvable_instances(max_queries=5))
    def test_identical_traces_dense(self, engine, instance):
        self._differential_trace(instance, engine)

    @pytest.mark.parametrize("engine", MASK_ENGINES)
    @settings(max_examples=15, deadline=None)
    @given(instance=wide_bcc_instances())
    def test_identical_traces_wide(self, engine, instance):
        self._differential_trace(instance, engine)

    @pytest.mark.parametrize("engine", MASK_ENGINES)
    @settings(max_examples=15, deadline=None)
    @given(instance=wide_bcc_instances())
    def test_rollback_replay_equivalence(self, engine, instance):
        """A rolled-back tracker equals one that never took the detour."""
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        split = len(pool) // 3
        with use_engine(engine):
            detoured = CoverageTracker(instance)
            straight = CoverageTracker(instance)
        detoured.add_all(pool[:split])
        straight.add_all(pool[:split])
        detoured.checkpoint()
        detoured.add_all(pool[split : 2 * split])
        detoured.rollback()
        assert _snapshot(detoured, instance) == _snapshot(straight, instance)
        # Post-rollback probes see no residue of the rolled-back adds.
        slate = pool[2 * split : 2 * split + 4]
        assert detoured.probe_gain(slate) == straight.probe_gain(slate)
        assert detoured.probe_gain_batch([slate]) == straight.probe_gain_batch(
            [slate]
        )

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(max_examples=10, deadline=None)
    @given(instance=wide_bcc_instances())
    def test_covered_queries_wide(self, engine, instance):
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        with use_engine("sets"):
            expected = covered_queries(instance, pool[::3])
        with use_engine(engine):
            assert covered_queries(_clone(instance), pool[::3]) == expected


# ----------------------------------------------------------------------
# incremental transpose maintenance
# ----------------------------------------------------------------------
class TestIncrementalTranspose:
    """The property → still-missing-query transpose must be *maintained*.

    After any interleaving of add / remove / checkpoint / rollback the
    live ``_t_by_prop`` / ``_t_uncovered`` state must be bitmap-identical
    to a cold rebuild from the missing masks — zero entries deleted, the
    uncovered mask exact — with the rebuild counter still at the single
    initial build (the A^BCC picks-loop invariant the perf-smoke CI job
    gates on).
    """

    def _check_against_cold(self, tracker):
        live_by_prop = dict(tracker._t_by_prop)
        live_uncovered = tracker._t_uncovered
        rebuilds = tracker.transpose_rebuilds
        tracker._t_by_prop = None
        cold_by_prop, cold_uncovered = tracker._transpose()
        assert live_by_prop == cold_by_prop
        assert live_uncovered == cold_uncovered
        # The verification's own forced rebuild is not the tracker's doing.
        tracker.transpose_rebuilds = rebuilds

    def _interleave(self, instance, engine, seed, steps=40):
        pool = sorted(instance.relevant_classifiers(), key=sorted)[:10]
        if not pool:
            return
        rng = random.Random(seed)
        with use_engine(engine):
            tracker = CoverageTracker(instance)
        # Force the one cold build: the heuristic may route short probes
        # through row replay, and the matrix engine never builds the
        # transpose on its own.
        tracker._transpose()
        baseline = tracker.transpose_rebuilds
        depth = 0
        for _ in range(steps):
            op = rng.randrange(5)
            if op <= 1:
                tracker.add(rng.choice(pool))
            elif op == 2 and depth:
                tracker.rollback()
                depth -= 1
            elif op == 3 and not depth and tracker.selected:
                tracker.remove(rng.choice(sorted(tracker.selected, key=sorted)))
            elif depth < 3:
                tracker.checkpoint()
                depth += 1
            self._check_against_cold(tracker)
        while depth:
            tracker.rollback()
            depth -= 1
            self._check_against_cold(tracker)
        assert tracker.transpose_rebuilds == baseline

    @pytest.mark.parametrize("engine", MASK_ENGINES)
    @settings(max_examples=25, deadline=None)
    @given(instance=solvable_instances(max_queries=5), seed=st.integers(0, 2**16))
    def test_matches_cold_rebuild_dense(self, engine, instance, seed):
        self._interleave(instance, engine, seed)

    @pytest.mark.parametrize("engine", MASK_ENGINES)
    @settings(max_examples=10, deadline=None)
    @given(instance=wide_bcc_instances(), seed=st.integers(0, 2**16))
    def test_matches_cold_rebuild_wide(self, engine, instance, seed):
        self._interleave(instance, engine, seed, steps=25)


# ----------------------------------------------------------------------
# the batched slate-probe API
# ----------------------------------------------------------------------
def _slates(pool):
    return [
        pool[:3],
        pool[3:9],
        [],
        [frozenset()],
        pool[:1] * 3,  # duplicate classifier within one slate
        pool[:3],  # duplicate slate within the batch
        pool,
    ]


class TestProbeGainBatch:
    @pytest.mark.parametrize("engine", ENGINES)
    @settings(max_examples=20, deadline=None)
    @given(instance=solvable_instances(max_queries=6))
    def test_batch_equals_serial_dense(self, engine, instance):
        with use_engine(engine):
            tracker = CoverageTracker(instance)
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        tracker.add_all(pool[:2])
        slates = _slates(pool)
        serial = [tracker.probe_gain(slate) for slate in slates]
        before = _snapshot(tracker, instance)
        assert tracker.probe_gain_batch(slates) == serial
        assert _snapshot(tracker, instance) == before

    @pytest.mark.parametrize("engine", ENGINES)
    @settings(max_examples=12, deadline=None)
    @given(instance=wide_bcc_instances())
    def test_batch_equals_serial_wide(self, engine, instance):
        with use_engine(engine):
            tracker = CoverageTracker(instance)
        pool = sorted(instance.relevant_classifiers(), key=sorted)
        tracker.add_all(pool[: len(pool) // 4])
        slates = _slates(pool) + [pool[i : i + 5] for i in range(0, 30, 5)]
        serial = [tracker.probe_gain(slate) for slate in slates]
        assert tracker.probe_gain_batch(slates) == serial

    @pytest.mark.parametrize("engine", ENGINES)
    def test_interleaved_checkpoint_rollback(self, engine):
        instance = _fig1()
        with use_engine(engine):
            tracker = CoverageTracker(instance)
        slates = [[fs("xyz")], [fs("yz"), fs("x")], [fs("y"), fs("z")], []]
        base = tracker.probe_gain_batch(slates)
        assert base == [tracker.probe_gain(s) for s in slates]
        tracker.checkpoint()
        tracker.add(fs("yz"))
        inside = tracker.probe_gain_batch(slates)
        assert inside == [tracker.probe_gain(s) for s in slates]
        tracker.rollback()
        assert tracker.probe_gain_batch(slates) == base
        tracker.add(fs("x"))
        after = tracker.probe_gain_batch(slates)
        assert after == [tracker.probe_gain(s) for s in slates]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_batch_and_rollback_telemetry(self, engine):
        instance = _fig1()
        with use_engine(engine):
            tracker = CoverageTracker(instance)
        assert tracker.probe_gain_batch([]) == []
        before = tracker.rollbacks
        tracker.probe_gain_batch([[fs("x")], [], [fs("y")]])
        # A batch counts one rollback per slate, exactly like the serial
        # sequence it must be float-identical to.
        assert tracker.rollbacks == before + 3

    @pytest.mark.parametrize("engine", ENGINES)
    def test_batch_raises_on_stale_workload(self, engine):
        with use_engine(engine):
            instance = _fig1()
            tracker = CoverageTracker(instance)
            tracker.add(fs("yz"))
            instance.set_cost(fs("x"), 1.0)
            with pytest.raises(StaleWorkloadError):
                tracker.probe_gain_batch([[fs("x")]])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_residual_evaluate_gain_batch_matches_serial(self, engine):
        with use_engine(engine):
            instance = _fig1()
            residual = ResidualProblem(instance)
            residual.select([fs("yz")])
            picks = [
                frozenset({fs("x")}),
                frozenset({fs("xz")}),
                frozenset({fs("x"), fs("y")}),
                frozenset(),
                frozenset({fs("yz")}),  # already selected: zero cost
            ]
            serial = [residual.evaluate_gain(pick) for pick in picks]
            assert residual.evaluate_gain_batch(picks) == serial


# ----------------------------------------------------------------------
# solver arms on the corpus, all engines (promoted from test_bitset.py)
# ----------------------------------------------------------------------
def _arm_cases():
    cases = corpus(seeds=range(2))
    for arm in default_arms():
        for case in cases:
            yield pytest.param(arm, case, id=f"{arm.name}-{case.name}")


def _view_for(arm, instance):
    if arm.kind == "gmc3":
        if not _has_finite_full_cover(instance):
            return None
        view = _gmc3_view(instance)
        return view if view.target > 0 else None
    if arm.kind == "ecc":
        return _ecc_view(instance)
    if arm.oracle and not _oracle_feasible(instance):
        return None
    return instance


@pytest.mark.parametrize("arm,case", _arm_cases())
def test_every_solver_arm_is_engine_identical(arm, case):
    """All registered solver arms: sets vs bits vs matrix."""
    view = _view_for(arm, case.instance)
    if view is None:
        pytest.skip(f"{arm.name} not applicable to {case.name}")
    outcomes = {}
    for engine in ENGINES:
        with use_engine(engine):
            solution = arm.run(view)
        outcomes[engine] = (
            solution.classifiers,
            solution.cost,
            solution.utility,
            solution.covered,
        )
    for engine in ENGINES[1:]:
        assert outcomes[engine] == outcomes["sets"], f"{engine} diverged"
