"""Tests for A^BCC (Algorithm 1) and its components."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    AbccConfig,
    ResidualProblem,
    prune_classifiers,
    solve_bcc,
    solve_bcc_exact,
)
from repro.algorithms.pruning import PruningConfig, prune_qk_graph
from repro.core import BCCInstance, check_budget, from_letters as fs
from tests.conftest import figure1_instance, random_instance


class TestFigure1:
    """A^BCC must find the optimal solutions of the paper's Figure 1."""

    def test_budget_3(self, fig1_b3):
        solution = solve_bcc(fig1_b3)
        check_budget(fig1_b3, solution)
        assert solution.utility == 8.0

    def test_budget_4(self, fig1_b4):
        solution = solve_bcc(fig1_b4)
        check_budget(fig1_b4, solution)
        assert solution.utility == 9.0

    def test_budget_11(self, fig1_b11):
        solution = solve_bcc(fig1_b11)
        check_budget(fig1_b11, solution)
        assert solution.utility == 11.0

    def test_budget_0(self):
        instance = figure1_instance(0.0)
        solution = solve_bcc(instance)
        # Only the free YZ classifier is available; it covers nothing alone.
        assert solution.utility == 0.0
        assert solution.cost == 0.0


class TestBruteForce:
    def test_fig1_optimal(self, fig1_b4):
        solution = solve_bcc_exact(fig1_b4)
        assert solution.utility == 9.0

    def test_too_large_rejected(self):
        from repro.datasets import generate_bestbuy

        instance = generate_bestbuy(n_queries=100, n_properties=80, budget=10)
        with pytest.raises(ValueError):
            solve_bcc_exact(instance)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_exact_at_least_greedy(self, seed):
        instance = random_instance(seed, n_properties=5, n_queries=5, max_length=2)
        from repro.baselines import ig1_bcc

        exact = solve_bcc_exact(instance)
        greedy = ig1_bcc(instance)
        assert exact.utility >= greedy.utility - 1e-9


class TestResidualProblem:
    def test_first_round_knapsack_is_bcc1(self, fig1_b4):
        residual = ResidualProblem(fig1_b4)
        items = residual.knapsack_items(fig1_b4.budget)
        by_key = {item.key: item for item in items}
        # 1-covers: classifiers identical to queries (XY excluded: infinite).
        assert fs("xyz") in by_key and by_key[fs("xyz")].value == 8.0
        assert fs("xz") in by_key and by_key[fs("xz")].value == 1.0
        assert fs("xy") not in by_key

    def test_first_round_qk_graph_is_bcc2(self):
        # Figure 2's instance: queries xy, yz, xz + singleton-ish values.
        queries = [fs("xy"), fs("yz")]
        utilities = {fs("xy"): 2.0, fs("yz"): 1.0}
        costs = {
            fs("x"): 1.0,
            fs("y"): 1.0,
            fs("z"): 2.0,
            fs("xy"): 3.0,
            fs("yz"): 1.0,
        }
        instance = BCCInstance(queries, utilities, costs, budget=3.0)
        graph = ResidualProblem(instance).qk_graph(instance.budget)
        assert graph.has_edge(fs("x"), fs("y"))
        assert graph.weight(fs("x"), fs("y")) == 2.0
        assert graph.has_edge(fs("y"), fs("z"))
        assert graph.cost(fs("z")) == 2.0

    def test_example_4_8_residual_one_covers(self):
        """After selecting Y, both XW and XYW 1-cover the query xyw."""
        instance = BCCInstance([fs("xyw")], budget=10.0)
        residual = ResidualProblem(instance)
        residual.select([fs("y")])
        items = residual.knapsack_items(10.0)
        keys = {item.key for item in items}
        assert fs("xw") in keys
        assert fs("xyw") in keys

    def test_example_4_8_residual_two_covers(self):
        """After selecting Y, the 2-covers of xyw are {X,W}, {XY,W},
        {X,WY}, {XY,WY} — and no 3-covers remain."""
        instance = BCCInstance([fs("xyw")], budget=10.0)
        residual = ResidualProblem(instance)
        residual.select([fs("y")])
        graph = residual.qk_graph(10.0)
        expected_edges = {
            frozenset({fs("x"), fs("w")}),
            frozenset({fs("xy"), fs("w")}),
            frozenset({fs("x"), fs("wy")}),
            frozenset({fs("xy"), fs("wy")}),
        }
        actual = {frozenset({u, v}) for u, v, _ in graph.edges()}
        assert actual == expected_edges

    def test_evaluate_gain_no_side_effects(self, fig1_b4):
        residual = ResidualProblem(fig1_b4)
        gain, cost = residual.evaluate_gain([fs("yz"), fs("xz")])
        assert gain == 9.0
        assert cost == 4.0
        assert residual.selected == frozenset()

    def test_spent_counts_selected(self, fig1_b11):
        residual = ResidualProblem(fig1_b11)
        residual.select([fs("x"), fs("y")])
        assert residual.spent() == 8.0


class TestPruning:
    def test_uniform_costs_prune_to_singletons_paper_rule(self):
        # The paper's aggressive rule collapses uniform-cost instances to
        # singleton classifiers.
        instance = BCCInstance([fs("xyz"), fs("xy")], budget=10.0)
        allowed = prune_classifiers(instance, instance.budget, PruningConfig.paper())
        assert allowed == {fs("x"), fs("y"), fs("z")}

    def test_default_rule_is_cost_neutral(self):
        # With the default (zero-error) rule, a pair classifier is kept
        # unless singletons replace it at no extra cost.
        instance = BCCInstance([fs("xy")], budget=10.0)
        allowed = prune_classifiers(instance, instance.budget)
        assert fs("xy") in allowed
        cheap = BCCInstance(
            [fs("xy")],
            costs={fs("x"): 0.5, fs("y"): 0.5, fs("xy"): 1.0},
            budget=10.0,
        )
        allowed = prune_classifiers(cheap, cheap.budget)
        assert fs("xy") not in allowed

    def test_small_budget_protection(self):
        # Budget 1: only XYZ (cost 1) can cover xyz; the singletons price
        # out at 3 > 1, so the long classifier must be protected.
        costs = {
            fs("x"): 1.0,
            fs("y"): 1.0,
            fs("z"): 1.0,
            fs("xy"): 1.0,
            fs("xz"): 1.0,
            fs("yz"): 1.0,
            fs("xyz"): 1.0,
        }
        instance = BCCInstance([fs("xyz")], costs=costs, budget=1.0)
        allowed = prune_classifiers(instance, instance.budget)
        assert fs("xyz") in allowed

    def test_expensive_long_classifier_kept_when_cheap(self):
        # XYZ cost 1, singletons cost 10 each: 30 > 3*1, keep XYZ.
        costs = {
            fs("x"): 10.0,
            fs("y"): 10.0,
            fs("z"): 10.0,
            fs("xy"): 10.0,
            fs("xz"): 10.0,
            fs("yz"): 10.0,
            fs("xyz"): 1.0,
        }
        instance = BCCInstance([fs("xyz")], costs=costs, budget=50.0)
        allowed = prune_classifiers(instance, instance.budget)
        assert fs("xyz") in allowed

    def test_over_budget_pruned(self, fig1_b3):
        allowed = prune_classifiers(fig1_b3, fig1_b3.budget)
        assert fs("x") not in allowed  # cost 5 > budget 3
        assert fs("xyz") in allowed

    def test_disabled_replaceable(self):
        instance = BCCInstance([fs("xy")], budget=10.0)
        allowed = prune_classifiers(
            instance, instance.budget, PruningConfig(replaceable=False)
        )
        assert fs("xy") in allowed

    def test_qk_graph_pruning_keeps_mass(self):
        from repro.graphs import WeightedGraph

        g = WeightedGraph()
        for i in range(10):
            g.add_node(i, 1.0)
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(i, j, 10.0)
        g.add_edge(8, 9, 0.01)  # negligible-leverage tail
        config = PruningConfig(leverage_keep=0.99, leverage_min_nodes=5)
        pruned = prune_qk_graph(g, config)
        # The dense block survives; the negligible tail is droppable.
        assert pruned.induced_weight(set(range(4))) == pytest.approx(60.0)
        assert len(pruned) < len(g)

    def test_qk_graph_pruning_disabled_below_min_nodes(self):
        from repro.graphs import WeightedGraph

        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 0.0001)
        pruned = prune_qk_graph(g, PruningConfig(leverage_min_nodes=1000))
        assert len(pruned) == len(g)

    def test_leverage_scores_track_degree_on_simple_graphs(self):
        from repro.algorithms.pruning import leverage_scores
        from repro.graphs import WeightedGraph

        g = WeightedGraph()
        for i in range(6):
            g.add_node(i, 1.0)
        for i in range(1, 6):
            g.add_edge(0, i, 1.0)  # star: hub 0 dominates
        scores = leverage_scores(g, rank=2)
        assert scores[0] == max(scores.values())


class TestAbccVsOptimal:
    """Figure 3d style: A^BCC close to brute force on small instances."""

    @given(seed=st.integers(0, 120))
    @settings(max_examples=12, deadline=None)
    def test_within_factor_of_optimal(self, seed):
        instance = random_instance(
            seed, n_properties=6, n_queries=6, max_length=2, budget_fraction=0.35
        )
        exact = solve_bcc_exact(instance)
        heuristic = solve_bcc(instance)
        check_budget(instance, heuristic)
        if exact.utility > 0:
            # The paper reports <20% loss on small P subsets; random
            # instances are harsher, demand >= 60% here.
            assert heuristic.utility >= 0.6 * exact.utility - 1e-9

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_longer_queries_feasible(self, seed):
        instance = random_instance(
            seed, n_properties=7, n_queries=6, max_length=4, budget_fraction=0.4
        )
        solution = solve_bcc(instance)
        check_budget(instance, solution)


class TestAbccConfigKnobs:
    def test_no_pruning_still_correct(self, fig1_b4):
        solution = solve_bcc(fig1_b4, AbccConfig(pruning=None))
        assert solution.utility == 9.0

    def test_no_mc3_still_feasible(self, fig1_b11):
        solution = solve_bcc(fig1_b11, AbccConfig(use_mc3=False))
        check_budget(fig1_b11, solution)
        assert solution.utility >= 8.0

    def test_single_round(self, fig1_b11):
        solution = solve_bcc(fig1_b11, AbccConfig(max_rounds=1))
        check_budget(fig1_b11, solution)

    def test_meta_records_rounds(self, fig1_b4):
        solution = solve_bcc(fig1_b4)
        assert solution.meta["algorithm"] == "A^BCC"
        assert solution.meta["rounds"] >= 1
