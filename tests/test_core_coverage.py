"""Unit and property-based tests for coverage semantics (repro.core.coverage)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BCCInstance,
    CoverageTracker,
    covered_queries,
    from_letters as fs,
    i_covers,
    is_covered,
    is_minimal_cover,
    minimal_covers,
)


class TestIsCovered:
    def test_exact_match(self):
        assert is_covered(fs("xy"), [fs("xy")])

    def test_union_of_two(self):
        # "wooden table" + "round table" cover "round wooden table".
        assert is_covered(fs("xyz"), [fs("xy"), fs("yz")])

    def test_superset_classifier_does_not_cover(self):
        # A classifier testing extra properties is not a subset of q.
        assert not is_covered(fs("xy"), [fs("xyz")])

    def test_partial_cover_insufficient(self):
        assert not is_covered(fs("xyz"), [fs("x"), fs("y")])

    def test_overlap_is_fine(self):
        # {YZ, XZ} covers xyz despite overlapping in z (Example 2.1).
        assert is_covered(fs("xyz"), [fs("yz"), fs("xz")])

    def test_empty_selection(self):
        assert not is_covered(fs("x"), [])

    def test_singletons_cover(self):
        assert is_covered(fs("xyz"), [fs("x"), fs("y"), fs("z")])


class TestCoveredQueries:
    def test_fig1_b4_solution(self, fig1_b4):
        covered = covered_queries(fig1_b4, [fs("yz"), fs("xz")])
        assert covered == {fs("xyz"), fs("xz")}

    def test_fig1_b11_solution(self, fig1_b11):
        covered = covered_queries(fig1_b11, [fs("yz"), fs("x"), fs("y"), fs("z")])
        assert covered == {fs("xyz"), fs("xz"), fs("xy")}

    def test_no_classifiers(self, fig1_b3):
        assert covered_queries(fig1_b3, []) == set()


class TestMinimalCovers:
    def test_singleton_query(self):
        assert minimal_covers(fs("x")) == [frozenset({fs("x")})]

    def test_pair_query(self):
        covers = minimal_covers(fs("xy"))
        assert frozenset({fs("xy")}) in covers
        assert frozenset({fs("x"), fs("y")}) in covers
        assert len(covers) == 2

    def test_triple_query_two_covers_count(self):
        # The paper (Section 4.2): a length-3 query has six 2-covers.
        assert len(i_covers(fs("xyz"), 2)) == 6

    def test_triple_query_three_cover(self):
        three = i_covers(fs("xyz"), 3)
        assert three == [frozenset({fs("x"), fs("y"), fs("z")})]

    def test_restricted_availability(self):
        covers = minimal_covers(fs("xy"), available=[fs("x"), fs("y")])
        assert covers == [frozenset({fs("x"), fs("y")})]

    def test_unavailable_query_uncoverable(self):
        assert minimal_covers(fs("xy"), available=[fs("x")]) == []

    def test_non_subset_classifiers_ignored(self):
        covers = minimal_covers(fs("xy"), available=[fs("xy"), fs("xz")])
        assert covers == [frozenset({fs("xy")})]

    def test_example_4_1_two_covers_of_xy(self):
        # In BCC(2), xy can only be 2-covered by {X, Y}; {X, XY} is not a
        # 2-cover since X is dispensable.
        covers = i_covers(fs("xy"), 2, available=[fs("x"), fs("y"), fs("xy")])
        assert covers == [frozenset({fs("x"), fs("y")})]


class TestIsMinimalCover:
    def test_exact(self):
        assert is_minimal_cover(fs("xy"), [fs("xy")])

    def test_redundant_member(self):
        assert not is_minimal_cover(fs("xy"), [fs("x"), fs("xy")])

    def test_non_subset_member(self):
        assert not is_minimal_cover(fs("xy"), [fs("xy"), fs("z")])

    def test_union_mismatch(self):
        assert not is_minimal_cover(fs("xyz"), [fs("x"), fs("y")])

    def test_overlapping_minimal(self):
        assert is_minimal_cover(fs("xyz"), [fs("xy"), fs("yz")])


class TestCoverageTracker:
    def test_incremental_matches_batch(self, fig1_b11):
        tracker = CoverageTracker(fig1_b11)
        selection = [fs("yz"), fs("x"), fs("y"), fs("z")]
        for classifier in selection:
            tracker.add(classifier)
        assert tracker.covered == frozenset(covered_queries(fig1_b11, selection))
        assert tracker.utility == 11.0

    def test_newly_covered_reporting(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        assert tracker.add(fs("yz")) == []
        newly = tracker.add(fs("xz"))
        assert set(newly) == {fs("xyz"), fs("xz")}

    def test_re_adding_is_noop(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        tracker.add(fs("xz"))
        assert tracker.add(fs("xz")) == []
        assert tracker.utility == 1.0

    def test_missing_properties(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        tracker.add(fs("yz"))
        assert tracker.missing_properties(fs("xyz")) == frozenset("x")

    def test_selected_exposed(self, fig1_b4):
        tracker = CoverageTracker(fig1_b4)
        tracker.add(fs("yz"))
        assert tracker.selected == frozenset({fs("yz")})


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
_PROPS = "abcdef"


def _random_subsets(rng: random.Random, count: int):
    subsets = set()
    while len(subsets) < count:
        size = rng.randint(1, 3)
        subsets.add(frozenset(rng.sample(_PROPS, size)))
    return sorted(subsets, key=sorted)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_coverage_monotone(seed):
    """Adding classifiers never un-covers a query."""
    rng = random.Random(seed)
    queries = _random_subsets(rng, 5)
    classifiers = _random_subsets(rng, 6)
    workload = BCCInstance(queries, budget=1.0)
    prefix = []
    covered_so_far = set()
    for classifier in classifiers:
        prefix.append(classifier)
        now = covered_queries(workload, prefix)
        assert covered_so_far <= now
        covered_so_far = now


@given(seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_tracker_agrees_with_batch(seed):
    rng = random.Random(seed)
    queries = _random_subsets(rng, 5)
    classifiers = _random_subsets(rng, 6)
    workload = BCCInstance(queries, budget=1.0)
    tracker = CoverageTracker(workload)
    tracker.add_all(classifiers)
    assert tracker.covered == frozenset(covered_queries(workload, classifiers))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_minimal_covers_are_minimal_and_cover(seed):
    rng = random.Random(seed)
    query = frozenset(rng.sample(_PROPS, rng.randint(1, 4)))
    for cover in minimal_covers(query):
        assert is_minimal_cover(query, cover)
        assert is_covered(query, cover)
