"""Serving-façade test wall: requests, coalescing, cache, replay determinism.

Covers the full serving surface:

- typed request/response round-trips and validation;
- Zipf trace generation and trace-file round-trips;
- façade round-trips (plan / replan / what_if) with certificates on every
  successful response;
- per-tick coalescing (identical effective instances share one solve,
  across tenants and across request kinds);
- cache short-circuit, the never-store-certificates contract and the
  tampered-payload rejection regression;
- replan-vs-cold bit-identity and tenant isolation (one tenant's
  ``StaleWorkloadError`` never fails another's request);
- degenerate rows (deadline 0, empty workloads) across all engines;
- the metamorphic determinism property: a trace served twice under a
  virtual clock — and under ``jobs=1`` vs ``jobs=2``, and across coverage
  engines — yields byte-identical canonical response sequences.
"""

from __future__ import annotations

import asyncio
import json
import types

import pytest
from hypothesis import given, settings

from repro.core import BCCInstance, from_letters as fs
from repro.core.bitset import ENGINES, use_engine
from repro.core.errors import InvalidInstanceError, UnknownTenantError
from repro.datasets.zipf import zipf_rank
from repro.incremental.delta import WorkloadDelta
from repro.incremental.engine import IncrementalConfig, IncrementalSolver
from repro.parallel.cache import ResultCache
from repro.serving import (
    PlanRequest,
    ReplanRequest,
    ServingConfig,
    ServingFacade,
    WhatIfRequest,
    generate_trace,
    load_trace,
    request_from_json,
    request_to_json,
    save_trace,
    tier_prior_clock,
    trace_from_json,
    trace_to_json,
)
from repro.serving.cli import main as serving_main
from repro.verify.certificate import verify_solution
from tests.conftest import figure1_instance, random_instance
from tests.strategies import request_streams

#: One cheap arm keeps behavioural tests fast; determinism tests use the
#: full default portfolio.
FAST_ARMS = ("abcc",)


def make_facade(tmp_path, arms=FAST_ARMS, cache=True, jobs=None, **kwargs):
    cache_obj = (
        ResultCache(directory=tmp_path / "serving-cache") if cache else None
    )
    return ServingFacade(
        ServingConfig(
            arms=arms, clock=tier_prior_clock(), cache=cache_obj, jobs=jobs, **kwargs
        )
    )


def serve(facade, *batches):
    """Serve each batch in its own tick; responses in submission order."""

    async def _run():
        out = []
        for batch in batches:
            futures = [facade.enqueue(request) for request in batch]
            await facade.tick()
            out.extend(future.result() for future in futures)
        return out

    return asyncio.run(_run())


def canonical_replay(trace, jobs=None, arms=None):
    """Replay ``trace`` on a fresh façade + cache; canonical responses."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-serving-test-") as scratch:
        from pathlib import Path

        facade = ServingFacade(
            ServingConfig(
                arms=arms or FAST_ARMS,
                clock=tier_prior_clock(),
                cache=ResultCache(directory=Path(scratch)),
                jobs=jobs,
            )
        )
        return [response.canonical() for response in facade.replay(trace)]


# ----------------------------------------------------------------------
# requests: validation and JSON round-trips
# ----------------------------------------------------------------------
class TestRequests:
    def test_plan_round_trips_through_json(self):
        request = PlanRequest("acme", budget=12.5, deadline_ms=40.0)
        assert request_from_json(request_to_json(request)) == request

    def test_replan_round_trips_through_json(self):
        delta = WorkloadDelta.of(remove=[fs("xy")], utilities={fs("xz"): 3.0})
        request = ReplanRequest("acme", delta, expected_version=4, deadline_ms=10.0)
        assert request_from_json(request_to_json(request)) == request

    def test_what_if_round_trips_through_json(self):
        delta = WorkloadDelta.of(add={fs("qq"): 5.0})
        request = WhatIfRequest("acme", budget=9.0, delta=delta)
        assert request_from_json(request_to_json(request)) == request

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            request_from_json({"kind": "destroy", "tenant": "acme"})

    def test_empty_tenant_is_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            PlanRequest("")

    def test_negative_budget_is_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            PlanRequest("acme", budget=-1.0)

    def test_negative_deadline_is_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            WhatIfRequest("acme", deadline_ms=-5.0)

    def test_replan_requires_a_workload_delta(self):
        with pytest.raises(ValueError, match="WorkloadDelta"):
            ReplanRequest("acme", delta={"remove": ["xy"]})

    def test_replan_rejects_negative_expected_version(self):
        with pytest.raises(ValueError, match="expected_version"):
            ReplanRequest("acme", WorkloadDelta.of(), expected_version=-1)

    def test_canonical_is_stable_and_sorted(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        (response,) = serve(facade, [PlanRequest("acme")])
        assert response.canonical() == response.canonical()
        payload = json.loads(response.canonical())
        assert payload["status"] == "ok"
        assert payload["solution"]["classifiers"] == sorted(
            payload["solution"]["classifiers"]
        )

    def test_canonical_excludes_volatile_diagnostics(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        (response,) = serve(facade, [PlanRequest("acme")])
        assert "slo" in response.telemetry  # diagnostics are delivered...
        payload = json.loads(response.canonical())
        assert "slo" not in payload["telemetry"]  # ...but never canonical


# ----------------------------------------------------------------------
# traffic: trace generation and files
# ----------------------------------------------------------------------
class TestTraffic:
    def test_generate_trace_is_a_pure_function_of_its_seed(self):
        one = trace_to_json(generate_trace(n_requests=40, n_tenants=3, seed=9))
        two = trace_to_json(generate_trace(n_requests=40, n_tenants=3, seed=9))
        assert one == two

    def test_generate_trace_seed_changes_the_trace(self):
        one = trace_to_json(generate_trace(n_requests=40, n_tenants=3, seed=1))
        two = trace_to_json(generate_trace(n_requests=40, n_tenants=3, seed=2))
        assert one != two

    def test_trace_round_trips_through_files(self, tmp_path):
        trace = generate_trace(n_requests=25, n_tenants=2, seed=5, deadline_ms=30.0)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        assert trace_to_json(load_trace(path)) == trace_to_json(trace)

    def test_kind_counts_cover_every_request(self):
        trace = generate_trace(n_requests=60, n_tenants=4, seed=2)
        counts = trace.kind_counts()
        assert sum(counts.values()) == len(trace) == 60
        assert counts["plan"] > counts["what_if"] > 0

    def test_tenant_popularity_is_zipf_skewed(self):
        trace = generate_trace(n_requests=400, n_tenants=6, seed=0, exponent=1.2)
        by_tenant = {}
        for item in trace.items:
            by_tenant[item.request.tenant] = by_tenant.get(item.request.tenant, 0) + 1
        ranked = [by_tenant.get(name, 0) for name in sorted(trace.tenants)]
        assert ranked[0] == max(ranked)
        assert ranked[0] >= 3 * max(ranked[-1], 1)

    def test_generated_replans_are_causally_valid(self, tmp_path):
        trace = generate_trace(n_requests=80, n_tenants=2, seed=4, replan_fraction=0.2)
        facade = make_facade(tmp_path)
        responses = facade.replay(trace)
        assert all(response.ok for response in responses)

    def test_generate_trace_validates_arguments(self):
        with pytest.raises(ValueError, match="n_requests"):
            generate_trace(n_requests=0)
        with pytest.raises(ValueError, match="n_tenants"):
            generate_trace(n_tenants=0)
        with pytest.raises(ValueError, match="fraction"):
            generate_trace(replan_fraction=0.8, what_if_fraction=0.5)

    def test_unsupported_trace_format_is_rejected(self):
        with pytest.raises(ValueError, match="format"):
            trace_from_json({"format": 99, "tenants": {}, "items": []})

    def test_zipf_rank_respects_bounds(self):
        import random

        rng = random.Random(0)
        ranks = {zipf_rank(rng, 5, 1.0) for _ in range(200)}
        assert ranks <= set(range(5)) and 0 in ranks
        with pytest.raises(ValueError):
            zipf_rank(rng, 0)


# ----------------------------------------------------------------------
# the façade: round-trips and tenant lifecycle
# ----------------------------------------------------------------------
class TestFacadeBasics:
    def test_plan_round_trip_is_certified_and_verified(self, tmp_path):
        instance = figure1_instance(4.0)
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", instance)
        (response,) = serve(facade, [PlanRequest("acme")])
        assert response.ok
        certificate = response.solution.meta["certificate"]
        verify_solution(instance, response.solution, certificate)
        assert response.solution.utility == 9.0

    def test_register_tenant_clones_the_instance(self, tmp_path):
        instance = figure1_instance(4.0)
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", instance)
        instance.apply_delta(WorkloadDelta.of(remove=[fs("xy")]))
        (response,) = serve(facade, [PlanRequest("acme")])
        assert response.ok and response.solution.utility == 9.0

    def test_register_tenant_validates_inputs(self, tmp_path):
        facade = make_facade(tmp_path)
        with pytest.raises(ValueError, match="tenant name"):
            facade.register_tenant("", figure1_instance(4.0))
        with pytest.raises(ValueError, match="BCCInstance"):
            facade.register_tenant("acme", {"not": "an instance"})

    def test_unknown_tenant_is_an_error_response(self, tmp_path):
        facade = make_facade(tmp_path)
        (response,) = serve(facade, [PlanRequest("ghost")])
        assert not response.ok
        assert response.error == "UnknownTenantError"
        assert facade.counters.errors == 1

    def test_tenant_version_raises_for_unknown_tenants(self, tmp_path):
        facade = make_facade(tmp_path)
        with pytest.raises(UnknownTenantError):
            facade.tenant_version("ghost")

    def test_budget_override_is_respected(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(11.0))
        low, high = serve(
            facade, [PlanRequest("acme", budget=3.0), PlanRequest("acme", budget=11.0)]
        )
        assert low.solution.cost <= 3.0
        assert low.solution.utility == 8.0
        assert high.solution.utility == 11.0

    def test_what_if_never_commits(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        before = facade.tenant_version("acme")
        delta = WorkloadDelta.of(remove=[fs("xy")])
        (response,) = serve(facade, [WhatIfRequest("acme", delta=delta, budget=3.0)])
        assert response.ok
        assert facade.tenant_version("acme") == before
        # the same hypothetical again: still valid, still uncommitted
        (again,) = serve(facade, [WhatIfRequest("acme", delta=delta, budget=3.0)])
        assert again.ok and again.solution.utility == response.solution.utility

    def test_counters_account_for_every_request(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(facade, [PlanRequest("acme"), PlanRequest("ghost")], [PlanRequest("acme")])
        counters = facade.counters
        assert counters.requests == counters.responses == 3
        assert counters.errors == 1
        assert counters.ticks == 2
        snapshot = counters.snapshot()
        assert snapshot["hit_rate"] == counters.hit_rate()

    def test_submit_through_the_running_production_loop(self, tmp_path):
        facade = make_facade(tmp_path, tick_seconds=0.001)
        facade.register_tenant("acme", figure1_instance(4.0))
        assert facade.tenants() == ["acme"]

        async def _run():
            loop_task = asyncio.create_task(facade.run())
            try:
                return await asyncio.wait_for(
                    facade.submit(PlanRequest("acme")), timeout=30.0
                )
            finally:
                facade.stop()
                await asyncio.wait_for(loop_task, timeout=30.0)

        response = asyncio.run(_run())
        assert response.ok and "certificate" in response.solution.meta

    def test_telemetry_records_the_simulated_timeline(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        (response,) = serve(facade, [PlanRequest("acme")])
        telemetry = response.telemetry
        assert telemetry["finish_s"] >= telemetry["start_s"] >= 0.0
        assert telemetry["queue_wait_s"] >= 0.0
        assert telemetry["tick"] == 0 and telemetry["batch_size"] == 1
        assert telemetry["path"] == "slo" and telemetry["cache"] == "miss"


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_identical_plans_share_one_solve(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        responses = serve(facade, [PlanRequest("acme") for _ in range(4)])
        assert facade.counters.solves == 1
        assert facade.counters.coalesced == 3
        assert {response.telemetry["batch_size"] for response in responses} == {4}
        assert len({response.canonical() for response in responses}) == 4  # ids differ
        assert (
            len({response.solution.classifiers for response in responses}) == 1
        )

    def test_plan_and_what_if_coalesce_on_content(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        responses = serve(facade, [PlanRequest("acme"), WhatIfRequest("acme")])
        assert facade.counters.solves == 1
        assert facade.counters.coalesced == 1
        assert [response.kind for response in responses] == ["plan", "what_if"]

    def test_identical_workloads_coalesce_across_tenants(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("alpha", figure1_instance(4.0))
        facade.register_tenant("beta", figure1_instance(4.0))
        responses = serve(facade, [PlanRequest("alpha"), PlanRequest("beta")])
        assert facade.counters.solves == 1
        assert {response.tenant for response in responses} == {"alpha", "beta"}

    def test_different_budgets_do_not_coalesce(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(facade, [PlanRequest("acme", budget=3.0), PlanRequest("acme", budget=4.0)])
        assert facade.counters.solves == 2
        assert facade.counters.coalesced == 0

    def test_different_deadlines_do_not_coalesce(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(
            facade,
            [PlanRequest("acme", deadline_ms=10.0), PlanRequest("acme", deadline_ms=500.0)],
        )
        assert facade.counters.solves == 2


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
class TestCache:
    def test_warm_hit_short_circuits_the_pool(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        (cold,), (warm,) = (
            serve(facade, [PlanRequest("acme")]),
            serve(facade, [PlanRequest("acme")]),
        )
        assert facade.counters.solves == 1  # the second tick never solved
        assert facade.counters.cache_hits == 1
        assert warm.telemetry["path"] == "cache"
        assert warm.telemetry["cache"] == "hit"
        assert warm.solution.classifiers == cold.solution.classifiers
        assert repr(warm.solution.cost) == repr(cold.solution.cost)
        assert repr(warm.solution.utility) == repr(cold.solution.utility)

    def test_cache_hits_carry_rederived_certificates(self, tmp_path):
        instance = figure1_instance(4.0)
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", instance)
        serve(facade, [PlanRequest("acme")])
        (warm,) = serve(facade, [PlanRequest("acme")])
        certificate = warm.solution.meta["certificate"]
        verify_solution(instance, warm.solution, certificate)

    def test_certificates_are_never_stored(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(facade, [PlanRequest("acme")])
        entries = list((tmp_path / "serving-cache").glob("*.json"))
        assert entries, "the cold solve must have been cached"
        for entry in entries:
            payload = json.loads(entry.read_text())
            assert "certificate" not in payload["solution"]["meta"]

    def test_tampered_cache_payload_is_rejected(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(facade, [PlanRequest("acme")])
        (entry,) = (tmp_path / "serving-cache").glob("*.json")
        payload = json.loads(entry.read_text())
        payload["solution"]["utility"] = payload["solution"]["utility"] + 100.0
        entry.write_text(json.dumps(payload))

        (response,) = serve(facade, [PlanRequest("acme")])
        assert facade.counters.cache_rejected == 1
        assert facade.counters.cache_hits == 0
        assert response.ok  # rejected hit falls back to a cold solve
        assert response.telemetry["cache"] == "rejected"
        assert response.solution.utility == 9.0
        verify_solution(
            figure1_instance(4.0), response.solution, response.solution.meta["certificate"]
        )
        # ...and the poisoned entry was overwritten with the good answer
        assert json.loads(entry.read_text())["solution"]["utility"] == 9.0

    def test_tampered_selection_is_rejected_too(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(facade, [PlanRequest("acme")])
        (entry,) = (tmp_path / "serving-cache").glob("*.json")
        payload = json.loads(entry.read_text())
        payload["solution"]["classifiers"].append(["x", "y"])  # C(XY) = inf
        entry.write_text(json.dumps(payload))
        (response,) = serve(facade, [PlanRequest("acme")])
        assert facade.counters.cache_rejected == 1
        assert response.ok and response.solution.utility == 9.0

    def test_no_cache_means_every_plan_solves_cold(self, tmp_path):
        facade = make_facade(tmp_path, cache=False)
        facade.register_tenant("acme", figure1_instance(4.0))
        serve(facade, [PlanRequest("acme")], [PlanRequest("acme")])
        assert facade.counters.solves == 2
        assert facade.counters.cache_hits == facade.counters.cache_misses == 0
        assert facade.counters.hit_rate() == 0.0


# ----------------------------------------------------------------------
# replan: warm mutation path
# ----------------------------------------------------------------------
class TestReplan:
    def test_replan_commits_and_bumps_the_version(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        before = facade.tenant_version("acme")
        delta = WorkloadDelta.of(remove=[fs("xy")])
        (response,) = serve(facade, [ReplanRequest("acme", delta)])
        assert response.ok
        assert response.telemetry["path"] == "incremental"
        assert facade.tenant_version("acme") > before
        assert facade.counters.replans == 1

    def test_replan_matches_the_cold_solve_bit_for_bit(self, tmp_path):
        instance = random_instance(3, n_queries=8)
        delta = WorkloadDelta.of(remove=[list(instance.queries)[0]])
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", instance)
        (warm,) = serve(facade, [ReplanRequest("acme", delta)])

        mutated = instance.clone()
        mutated.apply_delta(delta)
        cold = IncrementalSolver(
            mutated.clone(), config=IncrementalConfig(jobs=1, certify=True)
        ).solve()
        assert warm.solution.classifiers == cold.classifiers
        assert repr(warm.solution.cost) == repr(cold.cost)
        assert repr(warm.solution.utility) == repr(cold.utility)
        verify_solution(mutated, warm.solution, warm.solution.meta["certificate"])

    def test_stale_replan_is_an_error_response(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        delta = WorkloadDelta.of(remove=[fs("xy")])
        (response,) = serve(
            facade, [ReplanRequest("acme", delta, expected_version=999)]
        )
        assert not response.ok
        assert response.error == "StaleWorkloadError"
        # the workload was not mutated
        assert facade.tenant_version("acme") == 0

    def test_one_tenants_stale_replan_never_fails_another(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("alpha", figure1_instance(4.0))
        facade.register_tenant("beta", figure1_instance(4.0))
        stale = ReplanRequest(
            "alpha", WorkloadDelta.of(remove=[fs("xy")]), expected_version=999
        )
        bad, good = serve(facade, [stale, PlanRequest("beta")])
        assert not bad.ok and bad.error == "StaleWorkloadError"
        assert good.ok and good.solution.utility == 9.0

    def test_invalid_delta_is_an_error_response(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        delta = WorkloadDelta.of(remove=[fs("zz")])  # no such query
        bad, good = serve(facade, [ReplanRequest("acme", delta), PlanRequest("acme")])
        assert not bad.ok and bad.error == "InvalidDeltaError"
        assert good.ok

    def test_replan_is_a_mutation_barrier_within_a_tick(self, tmp_path):
        instance = figure1_instance(4.0)
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", instance)
        delta = WorkloadDelta.of(remove=[fs("xyz")])
        before, _replan, after = serve(
            facade,
            [PlanRequest("acme"), ReplanRequest("acme", delta), PlanRequest("acme")],
        )
        # the earlier plan answered the pre-delta workload...
        verify_solution(instance, before.solution, before.solution.meta["certificate"])
        assert before.solution.utility == 9.0
        # ...and the later plan the post-delta one
        mutated = instance.clone()
        mutated.apply_delta(delta)
        verify_solution(mutated, after.solution, after.solution.meta["certificate"])
        # with xyz (utility 8) gone, at most xz + xy = 3 remains
        assert after.solution.utility < 9.0


# ----------------------------------------------------------------------
# degenerate rows, across all engines
# ----------------------------------------------------------------------
class TestDegenerate:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_deadline_zero_still_returns_a_certified_answer(self, tmp_path, engine):
        with use_engine(engine):
            facade = make_facade(tmp_path / engine)
            facade.register_tenant("acme", figure1_instance(4.0))
            (response,) = serve(facade, [PlanRequest("acme", deadline_ms=0.0)])
            assert response.ok
            assert response.solution.cost <= 4.0
            assert "certificate" in response.solution.meta
            verify_solution(
                figure1_instance(4.0),
                response.solution,
                response.solution.meta["certificate"],
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_workloads_never_reach_the_facade(self, tmp_path, engine):
        with use_engine(engine):
            with pytest.raises(InvalidInstanceError):
                BCCInstance([], {}, {}, budget=1.0)
            facade = make_facade(tmp_path / engine)
            with pytest.raises(ValueError, match="BCCInstance"):
                facade.register_tenant("acme", None)

    def test_zero_budget_plan_serves_free_coverage_only(self, tmp_path):
        facade = make_facade(tmp_path)
        facade.register_tenant("acme", figure1_instance(4.0))
        (response,) = serve(facade, [PlanRequest("acme", budget=0.0)])
        assert response.ok
        assert response.solution.cost == 0.0

    def test_tick_with_no_requests_is_a_no_op(self, tmp_path):
        facade = make_facade(tmp_path)
        responses = serve(facade, [])
        assert responses == []
        assert facade.counters.responses == 0


# ----------------------------------------------------------------------
# determinism: the replay contract
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_trace_replays_byte_identical_across_runs(self):
        trace = generate_trace(n_requests=30, n_tenants=3, seed=3, deadline_ms=60.0)
        assert canonical_replay(trace) == canonical_replay(trace)

    def test_trace_replays_byte_identical_across_worker_counts(self):
        trace = generate_trace(n_requests=30, n_tenants=3, seed=3, deadline_ms=60.0)
        assert canonical_replay(trace, jobs=1) == canonical_replay(trace, jobs=2)

    @pytest.mark.parametrize("engine", [e for e in ENGINES if e != "sets"])
    def test_trace_replays_byte_identical_across_engines(self, engine):
        trace = generate_trace(n_requests=25, n_tenants=2, seed=6, deadline_ms=60.0)
        with use_engine("sets"):
            baseline = canonical_replay(trace)
        with use_engine(engine):
            assert canonical_replay(trace) == baseline

    def test_full_portfolio_replay_is_deterministic(self):
        from repro.slo.meta import DEFAULT_ARMS

        trace = generate_trace(n_requests=15, n_tenants=2, seed=8, deadline_ms=80.0)
        one = canonical_replay(trace, arms=DEFAULT_ARMS)
        two = canonical_replay(trace, arms=DEFAULT_ARMS)
        assert one == two

    def test_replay_preserves_trace_order(self, tmp_path):
        trace = generate_trace(n_requests=20, n_tenants=2, seed=1, deadline_ms=50.0)
        facade = make_facade(tmp_path)
        responses = facade.replay(trace)
        assert [response.request_id for response in responses] == [
            item.seq for item in trace.items
        ]

    def test_replay_advances_the_virtual_clock(self, tmp_path):
        trace = generate_trace(n_requests=10, n_tenants=2, seed=1, deadline_ms=50.0)
        facade = make_facade(tmp_path)
        facade.replay(trace)
        assert facade.clock.now() >= max(item.arrival_s for item in trace.items)

    @given(trace=request_streams())
    @settings(max_examples=8, deadline=None)
    def test_metamorphic_served_twice_and_wider_is_identical(self, trace):
        first = canonical_replay(trace)
        assert canonical_replay(trace) == first
        assert canonical_replay(trace, jobs=2) == first


# ----------------------------------------------------------------------
# the tier-prior virtual clock
# ----------------------------------------------------------------------
class TestTierPriorClock:
    def test_tasks_charge_their_registry_tier(self):
        clock = tier_prior_clock()
        result, seconds = clock.run_task(
            types.SimpleNamespace(solver="abcc"), lambda: "done"
        )
        assert result == "done"
        assert seconds == pytest.approx(0.05)
        assert clock.now() == pytest.approx(0.05)

    def test_unknown_solvers_charge_nothing(self):
        clock = tier_prior_clock()
        clock.run_task(types.SimpleNamespace(solver="no-such-arm"), lambda: None)
        clock.run_task(types.SimpleNamespace(solver=None), lambda: None)
        assert clock.now() == 0.0

    def test_clock_is_virtual_and_starts_where_asked(self):
        clock = tier_prior_clock(start=7.5)
        assert clock.virtual and clock.now() == 7.5


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_generated_trace_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = serving_main(
            [
                "--requests", "20", "--tenants", "2", "--seed", "4",
                "--deadline-ms", "60", "--virtual",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["requests"] == 20
        assert report["errors"] == 0
        assert report["virtual"] is True
        assert 0.0 <= report["cache"]["hit_rate"] <= 1.0
        assert report["latency_s"]["p99"] >= report["latency_s"]["p50"] >= 0.0
        out = capsys.readouterr().out
        assert "served 20 requests" in out and "virtual clock" in out

    def test_saved_trace_replays_identically(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        report_a = tmp_path / "a.json"
        report_b = tmp_path / "b.json"
        args = ["--deadline-ms", "60", "--virtual"]
        assert (
            serving_main(
                ["--requests", "15", "--tenants", "2", "--seed", "2",
                 "--save-trace", str(trace_path), "--json", str(report_a), *args]
            )
            == 0
        )
        assert (
            serving_main(["--trace", str(trace_path), "--json", str(report_b), *args])
            == 0
        )
        assert json.loads(report_a.read_text()) == json.loads(report_b.read_text())

    def test_no_cache_flag_disables_the_warm_path(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = serving_main(
            ["--requests", "10", "--tenants", "2", "--deadline-ms", "60",
             "--virtual", "--no-cache", "--json", str(report_path)]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["cache"]["hits"] == report["cache"]["misses"] == 0
