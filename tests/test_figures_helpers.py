"""Tests for the figure-construction helpers in repro.experiments.figures."""

import math

import pytest

from repro.core import ECCInstance, GMC3Instance
from repro.experiments.figures import (
    _as_ecc,
    _as_gmc3,
    _dataset,
    _small_subinstances,
)
from repro.experiments.scales import TINY


class TestDatasetDispatch:
    @pytest.mark.parametrize("name", ["BB", "P", "S"])
    def test_known_datasets(self, name):
        instance = _dataset(TINY, name, seed=0)
        assert instance.num_queries > 0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            _dataset(TINY, "nope", seed=0)

    def test_seed_changes_dataset(self):
        a = _dataset(TINY, "BB", seed=0)
        b = _dataset(TINY, "BB", seed=1)
        assert a.queries != b.queries


class TestConversions:
    def test_as_gmc3_preserves_workload(self):
        base = _dataset(TINY, "BB", seed=0)
        gmc3 = _as_gmc3(base, target=10.0)
        assert isinstance(gmc3, GMC3Instance)
        assert gmc3.target == 10.0
        assert gmc3.queries == base.queries
        for q in list(base.queries)[:20]:
            assert gmc3.utility(q) == base.utility(q)

    def test_as_ecc_clamps_zero_costs(self):
        base = _dataset(TINY, "S", seed=0)
        ecc = _as_ecc(base)
        assert isinstance(ecc, ECCInstance)
        for c in list(base.relevant_classifiers())[:200]:
            cost = ecc.cost(c)
            assert cost >= 1.0 or math.isinf(cost)


class TestSmallSubinstances:
    def test_brute_force_tractable(self):
        subs = _small_subinstances(TINY, seed=0)
        assert len(subs) >= 1
        for sub in subs:
            feasible = [
                c
                for c in sub.relevant_classifiers()
                if not math.isinf(sub.cost(c))
            ]
            assert len(feasible) <= 24  # the brute-force limit

    def test_costs_carried_over(self):
        subs = _small_subinstances(TINY, seed=0)
        for sub in subs:
            for q in sub.queries:
                assert sub.utility(q) > 0
