"""Tests for the knapsack substrate (repro.knapsack)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knapsack import (
    KnapsackItem,
    solve_knapsack,
    solve_knapsack_dp,
    solve_knapsack_fptas,
    solve_knapsack_greedy,
)

ALL_SOLVERS = [solve_knapsack, solve_knapsack_dp, solve_knapsack_greedy]


def brute_force(items, capacity):
    best = 0.0
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            weight = sum(i.weight for i in combo)
            if weight <= capacity:
                best = max(best, sum(i.value for i in combo))
    return best


def random_items(seed, n=8):
    rng = random.Random(seed)
    return [
        KnapsackItem(key=i, weight=rng.randint(0, 10), value=rng.randint(0, 10))
        for i in range(n)
    ]


class TestItem:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            KnapsackItem("a", -1.0, 1.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            KnapsackItem("a", 1.0, -1.0)


class TestDP:
    def test_simple(self):
        items = [KnapsackItem("a", 3, 4), KnapsackItem("b", 4, 5), KnapsackItem("c", 2, 3)]
        value, chosen = solve_knapsack_dp(items, 5)
        assert value == 7.0
        assert {i.key for i in chosen} == {"a", "c"}

    def test_zero_capacity(self):
        items = [KnapsackItem("a", 1, 10)]
        value, chosen = solve_knapsack_dp(items, 0)
        assert value == 0.0 and chosen == []

    def test_zero_weight_items_always_taken(self):
        items = [KnapsackItem("free", 0, 5), KnapsackItem("a", 2, 3)]
        value, chosen = solve_knapsack_dp(items, 2)
        assert value == 8.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack_dp([], -1)

    def test_fractional_weights_at_supported_scale(self):
        items = [KnapsackItem("a", 0.5, 4), KnapsackItem("b", 0.25, 3)]
        value, _ = solve_knapsack_dp(items, 0.5)
        assert value == 4.0

    def test_irrational_weights_rejected(self):
        items = [KnapsackItem("a", 0.123456, 4)]
        with pytest.raises(ValueError):
            solve_knapsack_dp(items, 1.0)

    @given(seed=st.integers(0, 2000), cap=st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_brute_force(self, seed, cap):
        items = random_items(seed)
        value, chosen = solve_knapsack_dp(items, cap)
        assert value == pytest.approx(brute_force(items, cap))
        assert sum(i.weight for i in chosen) <= cap
        assert sum(i.value for i in chosen) == pytest.approx(value)


class TestGreedy:
    def test_half_approximation(self):
        # Classic greedy trap: ratio ordering misses the big item.
        items = [KnapsackItem("small", 1, 2), KnapsackItem("big", 10, 10)]
        value, _ = solve_knapsack_greedy(items, 10)
        assert value >= 10.0 / 2

    def test_best_single_fallback(self):
        items = [
            KnapsackItem("a", 6, 7),
            KnapsackItem("b", 5, 5),
            KnapsackItem("c", 5, 5),
        ]
        value, _ = solve_knapsack_greedy(items, 10)
        assert value >= 7.0

    @given(seed=st.integers(0, 2000), cap=st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_greedy_feasible_and_half(self, seed, cap):
        items = random_items(seed)
        optimal = brute_force(items, cap)
        value, chosen = solve_knapsack_greedy(items, cap)
        assert sum(i.weight for i in chosen) <= cap + 1e-9
        assert value >= optimal / 2 - 1e-9


class TestFPTAS:
    @given(seed=st.integers(0, 1000), cap=st.integers(0, 25))
    @settings(max_examples=40, deadline=None)
    def test_fptas_guarantee(self, seed, cap):
        items = random_items(seed, n=7)
        optimal = brute_force(items, cap)
        value, chosen = solve_knapsack_fptas(items, cap, epsilon=0.1)
        assert sum(i.weight for i in chosen) <= cap + 1e-9
        assert value >= optimal / 1.1 - 1e-9
        assert value == pytest.approx(sum(i.value for i in chosen))

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack_fptas([], 1.0, epsilon=0.0)

    def test_empty(self):
        assert solve_knapsack_fptas([], 5.0) == (0.0, [])


class TestDispatcher:
    def test_falls_back_on_nonintegral(self):
        items = [KnapsackItem("a", 0.123456, 4)]
        value, chosen = solve_knapsack(items, 1.0)
        assert value == 4.0

    @given(seed=st.integers(0, 1000), cap=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_dispatcher_feasible(self, seed, cap):
        items = random_items(seed)
        value, chosen = solve_knapsack(items, cap)
        assert sum(i.weight for i in chosen) <= cap + 1e-9
        keys = [i.key for i in chosen]
        assert len(keys) == len(set(keys))
