"""Tests for the max-flow substrate (Dinic + project selection)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import Dinic, ProjectSelection, select_projects


class TestDinic:
    def test_single_edge(self):
        net = Dinic()
        net.add_edge("s", "t", 5.0)
        assert net.max_flow("s", "t") == pytest.approx(5.0)

    def test_series_bottleneck(self):
        net = Dinic()
        net.add_edge("s", "a", 5.0)
        net.add_edge("a", "t", 3.0)
        assert net.max_flow("s", "t") == pytest.approx(3.0)

    def test_parallel_paths(self):
        net = Dinic()
        net.add_edge("s", "a", 2.0)
        net.add_edge("a", "t", 2.0)
        net.add_edge("s", "b", 3.0)
        net.add_edge("b", "t", 3.0)
        assert net.max_flow("s", "t") == pytest.approx(5.0)

    def test_classic_diamond(self):
        # Textbook instance with a cross edge requiring augmenting paths.
        net = Dinic()
        net.add_edge("s", "a", 10.0)
        net.add_edge("s", "b", 10.0)
        net.add_edge("a", "b", 1.0)
        net.add_edge("a", "t", 8.0)
        net.add_edge("b", "t", 10.0)
        assert net.max_flow("s", "t") == pytest.approx(18.0)

    def test_disconnected(self):
        net = Dinic()
        net.add_node("t")
        net.add_edge("s", "a", 1.0)
        assert net.max_flow("s", "t") == 0.0

    def test_same_source_sink_rejected(self):
        net = Dinic()
        net.add_edge("s", "t", 1.0)
        with pytest.raises(ValueError):
            net.max_flow("s", "s")

    def test_negative_capacity_rejected(self):
        net = Dinic()
        with pytest.raises(ValueError):
            net.add_edge("s", "t", -1.0)

    def test_flow_limit(self):
        net = Dinic()
        net.add_edge("s", "t", 5.0)
        assert net.max_flow("s", "t", limit=2.0) == pytest.approx(2.0)

    def test_min_cut_source_side(self):
        net = Dinic()
        net.add_edge("s", "a", 1.0)
        net.add_edge("a", "t", 100.0)
        net.max_flow("s", "t")
        side = net.min_cut_source_side("s")
        assert "s" in side
        assert "a" not in side  # the s->a edge saturates


def _brute_force_max_flow(edges, source, sink):
    """Exponential max-flow via min-cut enumeration (max-flow = min-cut)."""
    nodes = sorted({u for u, _, _ in edges} | {v for _, v, _ in edges})
    others = [n for n in nodes if n not in (source, sink)]
    best = float("inf")
    for r in range(len(others) + 1):
        for combo in itertools.combinations(others, r):
            s_side = set(combo) | {source}
            cut = sum(c for u, v, c in edges if u in s_side and v not in s_side)
            best = min(best, cut)
    return best


@given(seed=st.integers(0, 3000))
@settings(max_examples=40, deadline=None)
def test_dinic_equals_brute_force_min_cut(seed):
    rng = random.Random(seed)
    nodes = ["s", "a", "b", "c", "t"]
    edges = []
    for u in nodes:
        for v in nodes:
            if u != v and rng.random() < 0.45:
                edges.append((u, v, float(rng.randint(1, 9))))
    net = Dinic()
    net.add_node("s")
    net.add_node("t")
    for u, v, c in edges:
        net.add_edge(u, v, c)
    flow = net.max_flow("s", "t")
    assert flow == pytest.approx(_brute_force_max_flow(edges, "s", "t"))


class TestProjectSelection:
    def test_profitable_project(self):
        value, projects, machines = select_projects(
            {"m1": 3.0}, {"p1": (10.0, ["m1"])}
        )
        assert value == pytest.approx(7.0)
        assert projects == {"p1"}
        assert machines == {"m1"}

    def test_unprofitable_project_skipped(self):
        value, projects, machines = select_projects(
            {"m1": 10.0}, {"p1": (3.0, ["m1"])}
        )
        assert value == pytest.approx(0.0)
        assert projects == set()

    def test_shared_machine(self):
        # Two projects share one machine: together profitable.
        value, projects, machines = select_projects(
            {"m": 5.0},
            {"p1": (3.0, ["m"]), "p2": (4.0, ["m"])},
        )
        assert value == pytest.approx(2.0)
        assert projects == {"p1", "p2"}
        assert machines == {"m"}

    def test_multi_machine_project(self):
        value, projects, machines = select_projects(
            {"m1": 2.0, "m2": 2.0},
            {"p": (5.0, ["m1", "m2"])},
        )
        assert value == pytest.approx(1.0)
        assert machines == {"m1", "m2"}

    def test_duplicate_project_key_rejected(self):
        instance = ProjectSelection()
        instance.add_project("p", 1.0, ["m"])
        with pytest.raises(ValueError):
            instance.add_project("p", 2.0, ["m"])

    def test_negative_revenue_rejected(self):
        instance = ProjectSelection()
        with pytest.raises(ValueError):
            instance.add_project("p", -1.0, ["m"])


def _brute_force_project_selection(machine_costs, projects):
    machines = sorted(machine_costs)
    best = 0.0
    for r in range(len(machines) + 1):
        for combo in itertools.combinations(machines, r):
            owned = set(combo)
            revenue = sum(
                rev
                for rev, needed in projects.values()
                if set(needed) <= owned
            )
            best = max(best, revenue - sum(machine_costs[m] for m in owned))
    return best


@given(seed=st.integers(0, 3000))
@settings(max_examples=40, deadline=None)
def test_project_selection_equals_brute_force(seed):
    rng = random.Random(seed)
    machines = {f"m{i}": float(rng.randint(0, 8)) for i in range(5)}
    projects = {}
    for p in range(4):
        needed = rng.sample(sorted(machines), rng.randint(1, 3))
        projects[f"p{p}"] = (float(rng.randint(0, 9)), needed)
    value, chosen_projects, chosen_machines = select_projects(machines, projects)
    assert value == pytest.approx(_brute_force_project_selection(machines, projects))
    # Reported selection must be consistent with the reported value.
    revenue = sum(
        projects[p][0] for p in chosen_projects
    )
    cost = sum(machines[m] for m in chosen_machines)
    assert revenue - cost == pytest.approx(value)
    for p in chosen_projects:
        assert set(projects[p][1]) <= chosen_machines
